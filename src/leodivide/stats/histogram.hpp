#pragma once
// Fixed-width histograms, used to regenerate the left panel of the paper's
// Figure 1 (# of un(der)served locations per Starlink service cell).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace leodivide::stats {

/// A histogram with `bins` equal-width bins over [lo, hi]. Values exactly at
/// `hi` land in the last bin; values outside [lo, hi] are counted separately
/// as under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Inclusive lower edge of a bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of a bin (inclusive for the last bin).
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// Renders a fixed-width ASCII bar chart, one row per bin, scaled so the
  /// largest bin occupies `max_bar` characters. Intended for bench output.
  [[nodiscard]] std::string ascii(std::size_t max_bar = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace leodivide::stats
