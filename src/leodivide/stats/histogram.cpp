#include "leodivide/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace leodivide::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  counts_.assign(bins, 0);
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value > hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // value == hi_
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

std::uint64_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_hi");
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::ascii(std::size_t max_bar) const {
  const std::uint64_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak == 0 ? std::size_t{0}
                  : static_cast<std::size_t>(std::llround(
                        static_cast<double>(counts_[i]) * static_cast<double>(max_bar) /
                        static_cast<double>(peak)));
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace leodivide::stats
