#include "leodivide/stats/lorenz.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "leodivide/stats/summary.hpp"

namespace leodivide::stats {

namespace {

std::vector<double> sorted_nonnegative(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("lorenz: empty input");
  std::vector<double> sorted(values.begin(), values.end());
  for (double v : sorted) {
    if (v < 0.0) throw std::invalid_argument("lorenz: negative value");
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

double gini(std::span<const double> values) {
  const auto sorted = sorted_nonnegative(values);
  const double n = static_cast<double>(sorted.size());
  KahanSum weighted, total;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted.add((2.0 * static_cast<double>(i + 1) - n - 1.0) * sorted[i]);
    total.add(sorted[i]);
  }
  if (total.value() <= 0.0) {
    throw std::invalid_argument("gini: all values are zero");
  }
  return weighted.value() / (n * total.value());
}

std::vector<std::pair<double, double>> lorenz_curve(
    std::span<const double> values, std::size_t points) {
  if (points < 2) throw std::invalid_argument("lorenz_curve: points < 2");
  const auto sorted = sorted_nonnegative(values);
  std::vector<double> cumsum(sorted.size());
  double running = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    running += sorted[i];
    cumsum[i] = running;
  }
  if (running <= 0.0) {
    throw std::invalid_argument("lorenz_curve: all values are zero");
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double p = static_cast<double>(k) / static_cast<double>(points - 1);
    const auto idx = static_cast<std::size_t>(
        std::floor(p * static_cast<double>(sorted.size())));
    const double share = idx == 0 ? 0.0 : cumsum[idx - 1] / running;
    out.emplace_back(p, share);
  }
  out.back() = {1.0, 1.0};
  return out;
}

double top_share(std::span<const double> values, double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("top_share: fraction outside (0, 1]");
  }
  const auto sorted = sorted_nonnegative(values);
  double total = 0.0;
  for (double v : sorted) total += v;
  if (total <= 0.0) throw std::invalid_argument("top_share: all zero");
  const auto top_n = static_cast<std::size_t>(std::max(
      1.0, std::ceil(fraction * static_cast<double>(sorted.size()))));
  double top = 0.0;
  for (std::size_t i = sorted.size() - top_n; i < sorted.size(); ++i) {
    top += sorted[i];
  }
  return top / total;
}

}  // namespace leodivide::stats
