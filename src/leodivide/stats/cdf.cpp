#include "leodivide/stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace leodivide::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  if (sorted_.empty()) throw std::invalid_argument("EmpiricalCdf: empty");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile: p not in [0,1]");
  // leolint:allow(float-eq): p == 0 is the documented exact lower edge
  if (p == 0.0) return sorted_.front();
  const auto rank = static_cast<std::size_t>(
      std::min<double>(std::ceil(p * static_cast<double>(sorted_.size())),
                       static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  if (points < 2) throw std::invalid_argument("curve: need >= 2 points");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = min();
  const double hi = max();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

WeightedCdf::WeightedCdf(std::span<const double> values,
                         std::span<const double> weights) {
  if (values.size() != weights.size() || values.empty()) {
    throw std::invalid_argument("WeightedCdf: mismatched or empty inputs");
  }
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  values_.reserve(values.size());
  cumsum_.reserve(values.size());
  double running = 0.0;
  for (std::size_t i : order) {
    if (weights[i] < 0.0) {
      throw std::invalid_argument("WeightedCdf: negative weight");
    }
    running += weights[i];
    values_.push_back(values[i]);
    cumsum_.push_back(running);
  }
  total_ = running;
  if (total_ <= 0.0) throw std::invalid_argument("WeightedCdf: zero weight");
}

double WeightedCdf::weight_at_most(double x) const {
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  if (it == values_.begin()) return 0.0;
  return cumsum_[static_cast<std::size_t>(it - values_.begin()) - 1];
}

double WeightedCdf::operator()(double x) const {
  return weight_at_most(x) / total_;
}

double WeightedCdf::quantile(double p) const {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile: p not in [0,1]");
  const double target = p * total_;
  const auto it = std::lower_bound(cumsum_.begin(), cumsum_.end(), target);
  if (it == cumsum_.end()) return values_.back();
  return values_[static_cast<std::size_t>(it - cumsum_.begin())];
}

}  // namespace leodivide::stats
