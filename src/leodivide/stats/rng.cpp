#include "leodivide/stats/rng.hpp"

namespace leodivide::stats {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1U) | 1U) {
  (*this)();
  state_ += seed;
  (*this)();
}

Pcg32::result_type Pcg32::operator()() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  const auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

double Pcg32::next_double() noexcept {
  return static_cast<double>((*this)()) * 0x1.0p-32;
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased reduction.
  std::uint64_t m = static_cast<std::uint64_t>((*this)()) * bound;
  auto low = static_cast<std::uint32_t>(m);
  if (low < bound) {
    const std::uint32_t threshold = (0U - bound) % bound;
    while (low < threshold) {
      m = static_cast<std::uint64_t>((*this)()) * bound;
      low = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32U);
}

std::uint64_t mix_seed(std::uint64_t global_seed,
                       std::uint64_t entity_id) noexcept {
  SplitMix64 mixer(global_seed ^ (entity_id * 0x9e3779b97f4a7c15ULL));
  return mixer();
}

}  // namespace leodivide::stats
