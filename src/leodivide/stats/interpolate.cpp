#include "leodivide/stats/interpolate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leodivide::stats {

double lerp_clamped(std::span<const double> xs, std::span<const double> ys,
                    double x) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("lerp_clamped: mismatched or empty grids");
  }
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

namespace {
// Positive floor used so that log-linear interpolation tolerates zero-valued
// anchors (e.g. "0 locations" at p = 0).
constexpr double kLogFloor = 1e-9;

double safe_log(double v) { return std::log(std::max(v, kLogFloor)); }
}  // namespace

PiecewiseQuantile::PiecewiseQuantile(std::vector<QuantileAnchor> anchors)
    : anchors_(std::move(anchors)) {
  if (anchors_.size() < 2) {
    throw std::invalid_argument("PiecewiseQuantile: need >= 2 anchors");
  }
  std::sort(anchors_.begin(), anchors_.end(),
            [](const QuantileAnchor& a, const QuantileAnchor& b) {
              return a.p < b.p;
            });
  for (std::size_t i = 0; i < anchors_.size(); ++i) {
    const auto& a = anchors_[i];
    if (a.p < 0.0 || a.p > 1.0 || a.value < 0.0) {
      throw std::invalid_argument("PiecewiseQuantile: anchor out of range");
    }
    if (i > 0) {
      if (a.p <= anchors_[i - 1].p) {
        throw std::invalid_argument(
            "PiecewiseQuantile: duplicate anchor probability");
      }
      if (a.value < anchors_[i - 1].value) {
        throw std::invalid_argument(
            "PiecewiseQuantile: values must be non-decreasing");
      }
    }
  }
}

double PiecewiseQuantile::operator()(double p) const {
  if (p <= anchors_.front().p) return anchors_.front().value;
  if (p >= anchors_.back().p) return anchors_.back().value;
  const auto it = std::upper_bound(
      anchors_.begin(), anchors_.end(), p,
      [](double pp, const QuantileAnchor& a) { return pp < a.p; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double t = (p - lo.p) / (hi.p - lo.p);
  const double lv = safe_log(lo.value) + t * (safe_log(hi.value) - safe_log(lo.value));
  const double v = std::exp(lv);
  return v < 2.0 * kLogFloor ? 0.0 : v;
}

double PiecewiseQuantile::cdf(double value) const {
  if (value <= anchors_.front().value) return anchors_.front().p;
  if (value >= anchors_.back().value) return anchors_.back().p;
  // Find the segment containing `value` (values are non-decreasing).
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    if (value <= anchors_[i].value) {
      const auto& lo = anchors_[i - 1];
      const auto& hi = anchors_[i];
      if (hi.value <= lo.value) return hi.p;  // flat segment
      const double t =
          (safe_log(value) - safe_log(lo.value)) /
          (safe_log(hi.value) - safe_log(lo.value));
      return lo.p + t * (hi.p - lo.p);
    }
  }
  return anchors_.back().p;
}

double PiecewiseQuantile::mean(std::size_t steps) const {
  if (steps == 0) throw std::invalid_argument("mean: steps must be > 0");
  double acc = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(steps);
    acc += (*this)(p);
  }
  return acc / static_cast<double>(steps);
}

}  // namespace leodivide::stats
