#pragma once
// Streaming summary statistics: Kahan-compensated sums and Welford moments.

#include <cstdint>
#include <span>

namespace leodivide::stats {

/// Kahan–Babuška compensated accumulator. Sums of millions of per-location
/// demands must not drift; plain double accumulation loses low bits.
class KahanSum {
 public:
  void add(double v) noexcept;
  [[nodiscard]] double value() const noexcept { return sum_ + carry_; }

 private:
  double sum_ = 0.0;
  double carry_ = 0.0;
};

/// Kahan-compensated sum of a range.
[[nodiscard]] double ksum(std::span<const double> values) noexcept;

/// Welford online mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const noexcept;
  /// Sample (Bessel-corrected) variance.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace leodivide::stats
