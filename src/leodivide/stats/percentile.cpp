#include "leodivide/stats/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leodivide::stats {

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument("percentile_sorted: empty input");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile_sorted: p outside [0, 100]");
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted[lo];
  const double t = rank - static_cast<double>(lo);
  return sorted[lo] + t * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> values, double p) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ps) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile_sorted(copy, p));
  return out;
}

}  // namespace leodivide::stats
