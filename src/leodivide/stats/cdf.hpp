#pragma once
// Empirical cumulative distribution functions, both unweighted (Fig 1 right
// panel) and weighted (Fig 4, where each county's income is weighted by its
// number of un(der)served locations).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace leodivide::stats {

/// Empirical CDF over unweighted samples.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::span<const double> samples);

  /// F(x): fraction of samples <= x.
  [[nodiscard]] double operator()(double x) const;

  /// Smallest sample v such that F(v) >= p.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }

  /// Evenly-spaced (x, F(x)) pairs for plotting/printing.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Empirical CDF over weighted samples (value, weight >= 0).
class WeightedCdf {
 public:
  WeightedCdf(std::span<const double> values, std::span<const double> weights);

  /// F(x): total weight of samples <= x divided by total weight.
  [[nodiscard]] double operator()(double x) const;

  /// Total weight of samples <= x (unnormalised) — e.g. "number of locations
  /// unable to afford" is total_weight() - weight_at_most(threshold).
  [[nodiscard]] double weight_at_most(double x) const;

  /// Smallest value v such that F(v) >= p.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] double total_weight() const { return total_; }
  [[nodiscard]] double min() const { return values_.front(); }
  [[nodiscard]] double max() const { return values_.back(); }

 private:
  std::vector<double> values_;   // sorted ascending
  std::vector<double> cumsum_;   // cumulative weight aligned with values_
  double total_ = 0.0;
};

}  // namespace leodivide::stats
