#include "leodivide/stats/distributions.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace leodivide::stats {

double sample_uniform(Pcg32& rng, double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("sample_uniform: lo > hi");
  return lo + (hi - lo) * rng.next_double();
}

double sample_normal(Pcg32& rng, double mean, double stddev) {
  // Box–Muller; guard u1 away from zero for the log.
  double u1 = rng.next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = rng.next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double sample_lognormal(Pcg32& rng, double mu, double sigma) {
  return std::exp(sample_normal(rng, mu, sigma));
}

double sample_pareto(Pcg32& rng, double x_m, double alpha) {
  if (x_m <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("sample_pareto: x_m and alpha must be > 0");
  }
  double u = rng.next_double();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return x_m / std::pow(1.0 - u, 1.0 / alpha);
}

double sample_truncated_pareto(Pcg32& rng, double x_m, double alpha,
                               double cap) {
  if (cap <= x_m) {
    throw std::invalid_argument("sample_truncated_pareto: cap <= x_m");
  }
  // CDF of truncated Pareto: F(x) = (1 - (x_m/x)^a) / (1 - (x_m/cap)^a).
  const double tail = 1.0 - std::pow(x_m / cap, alpha);
  const double u = rng.next_double() * tail;
  return x_m / std::pow(1.0 - u, 1.0 / alpha);
}

double sample_exponential(Pcg32& rng, double lambda) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("sample_exponential: lambda must be > 0");
  }
  double u = rng.next_double();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -std::log(1.0 - u) / lambda;
}

unsigned sample_poisson(Pcg32& rng, double lambda) {
  if (lambda < 0.0) {
    throw std::invalid_argument("sample_poisson: lambda must be >= 0");
  }
  // leolint:allow(float-eq): exact-zero rate short-circuits sampling
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    const double limit = std::exp(-lambda);
    double prod = rng.next_double();
    unsigned n = 0;
    while (prod > limit) {
      prod *= rng.next_double();
      ++n;
    }
    return n;
  }
  const double v = sample_normal(rng, lambda, std::sqrt(lambda));
  return v <= 0.0 ? 0U : static_cast<unsigned>(std::lround(v));
}

double sample_quantile(Pcg32& rng, const PiecewiseQuantile& q) {
  return q(rng.next_double());
}

std::size_t sample_weighted(Pcg32& rng, std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("sample_weighted: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("sample_weighted: all weights are zero");
  }
  double target = rng.next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

WeightedAlias::WeightedAlias(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("WeightedAlias: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("WeightedAlias: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("WeightedAlias: all weights are zero");
  }
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t WeightedAlias::operator()(Pcg32& rng) const {
  const std::size_t i = rng.next_below(static_cast<std::uint32_t>(prob_.size()));
  return rng.next_double() < prob_[i] ? i : alias_[i];
}

}  // namespace leodivide::stats
