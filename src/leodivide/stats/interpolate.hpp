#pragma once
// Piecewise interpolation utilities, including the monotone piecewise
// quantile functions used to calibrate synthetic demand and income
// distributions against the statistics published in the paper.

#include <cstddef>
#include <span>
#include <vector>

namespace leodivide::stats {

/// Linear interpolation of y(x) over a strictly increasing grid `xs`.
/// Values outside the grid are clamped to the end values.
[[nodiscard]] double lerp_clamped(std::span<const double> xs,
                                  std::span<const double> ys, double x);

/// One (probability, value) anchor of a piecewise quantile function.
struct QuantileAnchor {
  double p;      ///< cumulative probability in [0, 1]
  double value;  ///< quantile value at p (must be non-decreasing in p)
};

/// A monotone piecewise quantile function Q(p) defined by anchors, with
/// geometric (log-linear) interpolation between anchors. Log-linear
/// interpolation is the natural choice for heavy-tailed positive variables
/// such as "un(der)served locations per cell" or "county median income":
/// straight lines in (p, log value) space reproduce the long-tail shape the
/// paper's Figure 1 exhibits while passing exactly through every published
/// percentile.
class PiecewiseQuantile {
 public:
  /// Builds the function from anchors. Anchors are sorted by probability;
  /// throws std::invalid_argument if fewer than two anchors are given, if
  /// probabilities fall outside [0,1] or repeat, or if values are negative
  /// or decreasing.
  explicit PiecewiseQuantile(std::vector<QuantileAnchor> anchors);

  /// Evaluates Q(p); p is clamped to [p_min, p_max] of the anchors.
  [[nodiscard]] double operator()(double p) const;

  /// Inverse: the CDF F(v) such that Q(F(v)) == v for v within range
  /// (clamped outside).
  [[nodiscard]] double cdf(double value) const;

  /// Mean of the distribution, integrated numerically over `steps` equal
  /// probability slices (midpoint rule).
  [[nodiscard]] double mean(std::size_t steps = 20000) const;

  [[nodiscard]] const std::vector<QuantileAnchor>& anchors() const {
    return anchors_;
  }

 private:
  std::vector<QuantileAnchor> anchors_;
};

}  // namespace leodivide::stats
