#pragma once
// Portable fixed-width SIMD lanes on the GCC/Clang vector extension, with a
// compile-time-selected scalar fallback. No intrinsics headers and no
// target-specific code here: a DoubleLanes<W>::V is a W-wide double vector
// whose +, -, *, and comparison operators are per-lane IEEE-754 operations,
// and the compiler legalizes any width for the target it was given (a
// 4-wide vector compiles to two SSE2 ops on baseline x86-64, one AVX op
// when the TU is built with -mavx2, and scalar code elsewhere).
//
// Determinism contract: per-lane vector arithmetic is bit-identical to the
// equivalent scalar expression as long as floating-point contraction is off
// — the top-level build sets -ffp-contract=off globally so a fused
// multiply-add can never creep into one side of a scalar-vs-SIMD
// comparison. Reduction order is the kernel author's responsibility: fix
// the lane order explicitly (lane 0 first) instead of tree-reducing.
//
// Width selection: kernels TUs pick kPreferredLanes, which honours a
// per-TU -DLEODIVIDE_SIMD_WIDTH=<1|2|4|8> override, otherwise defaults to
// 8-wide under AVX-512, 4-wide when the vector extension is available, and
// 1 (scalar fallback) on compilers without the extension. The constant has
// internal linkage on purpose: TUs compiled with different target flags
// each get their own value, and nothing flag-dependent is exported inline.

#include <cstddef>
#include <cstring>

namespace leodivide::simd {

#if defined(__GNUC__) || defined(__clang__)
#define LEODIVIDE_SIMD_VECTOR_EXT 1
#endif

/// W-wide double lanes plus the matching per-lane comparison mask type
/// (vector comparisons yield all-ones / all-zero integer lanes). Only the
/// widths the extension supports are specialized; DoubleLanes<1> is the
/// scalar fallback so width-generic kernels compile everywhere.
template <std::size_t W>
struct DoubleLanes;

template <>
struct DoubleLanes<1> {
  using V = double;
  using M = long long;
  static V load(const double* p) noexcept { return *p; }
  static void store(double* p, V v) noexcept { *p = v; }
  static V splat(double x) noexcept { return x; }
  static double lane(V v, std::size_t) noexcept { return v; }
  static long long mask_lane(M m, std::size_t) noexcept { return m; }
};

#ifdef LEODIVIDE_SIMD_VECTOR_EXT

namespace detail {

/// Shared implementation for the vector-extension widths. memcpy-based
/// load/store keeps unaligned access well-defined (it compiles to a single
/// unaligned vector move).
template <typename Vec, typename Mask, std::size_t W>
struct VectorLanes {
  using V = Vec;
  using M = Mask;
  static V load(const double* p) noexcept {
    V v;
    std::memcpy(&v, p, sizeof v);
    return v;
  }
  static void store(double* p, V v) noexcept { std::memcpy(p, &v, sizeof v); }
  static V splat(double x) noexcept {
    V v;
    for (std::size_t i = 0; i < W; ++i) v[i] = x;
    return v;
  }
  static double lane(V v, std::size_t i) noexcept { return v[i]; }
  static long long mask_lane(M m, std::size_t i) noexcept { return m[i]; }
};

using V2 = double __attribute__((vector_size(16)));
using M2 = long long __attribute__((vector_size(16)));
using V4 = double __attribute__((vector_size(32)));
using M4 = long long __attribute__((vector_size(32)));
using V8 = double __attribute__((vector_size(64)));
using M8 = long long __attribute__((vector_size(64)));

}  // namespace detail

template <>
struct DoubleLanes<2> : detail::VectorLanes<detail::V2, detail::M2, 2> {};
template <>
struct DoubleLanes<4> : detail::VectorLanes<detail::V4, detail::M4, 4> {};
template <>
struct DoubleLanes<8> : detail::VectorLanes<detail::V8, detail::M8, 8> {};

#endif  // LEODIVIDE_SIMD_VECTOR_EXT

/// Lane width this TU should use. Internal linkage (constexpr namespace
/// variable) so per-TU target flags cannot cause an ODR mismatch.
#if defined(LEODIVIDE_SIMD_WIDTH)
constexpr std::size_t kPreferredLanes = LEODIVIDE_SIMD_WIDTH;
#elif defined(LEODIVIDE_SIMD_VECTOR_EXT) && defined(__AVX512F__)
constexpr std::size_t kPreferredLanes = 8;
#elif defined(LEODIVIDE_SIMD_VECTOR_EXT)
constexpr std::size_t kPreferredLanes = 4;
#else
constexpr std::size_t kPreferredLanes = 1;
#endif

static_assert(kPreferredLanes == 1 || kPreferredLanes == 2 ||
                  kPreferredLanes == 4 || kPreferredLanes == 8,
              "LEODIVIDE_SIMD_WIDTH must be 1, 2, 4 or 8");

}  // namespace leodivide::simd
