#pragma once
// Geographic bounding boxes (axis-aligned in lat/lon).

#include <iosfwd>

#include "leodivide/geo/geopoint.hpp"

namespace leodivide::geo {

/// Axis-aligned lat/lon box. Does not support boxes crossing the antimeridian
/// (sufficient for the contiguous US, Alaska handled as its own box).
struct BoundingBox {
  double lat_min = 0.0;
  double lat_max = 0.0;
  double lon_min = 0.0;
  double lon_max = 0.0;

  [[nodiscard]] bool valid() const noexcept;
  [[nodiscard]] bool contains(const GeoPoint& p) const noexcept;
  [[nodiscard]] GeoPoint center() const noexcept;
  /// Expands the box to include p; an invalid (empty) box becomes the point.
  void extend(const GeoPoint& p) noexcept;
  /// Approximate surface area [km^2] (exact for the spherical Earth).
  [[nodiscard]] double area_km2() const;
  /// True if the two boxes share any point.
  [[nodiscard]] bool intersects(const BoundingBox& o) const noexcept;

  /// A box that contains nothing; extend() grows it from scratch.
  [[nodiscard]] static BoundingBox empty() noexcept;

  friend bool operator==(const BoundingBox&, const BoundingBox&) = default;
};

std::ostream& operator<<(std::ostream& os, const BoundingBox& b);

/// Bounding box of the contiguous United States (generous).
[[nodiscard]] BoundingBox conus_bbox() noexcept;

}  // namespace leodivide::geo
