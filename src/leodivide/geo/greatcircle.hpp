#pragma once
// Great-circle geometry on the spherical Earth: distances, bearings,
// destination points and interpolation along arcs.

#include "leodivide/geo/geopoint.hpp"

namespace leodivide::geo {

/// Haversine great-circle distance [km].
[[nodiscard]] double distance_km(const GeoPoint& a, const GeoPoint& b);

/// Central angle between two points [radians].
[[nodiscard]] double central_angle_rad(const GeoPoint& a, const GeoPoint& b);

/// Initial bearing from a to b, degrees clockwise from true north in
/// [0, 360).
[[nodiscard]] double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b);

/// Point reached travelling `distance_km` from `start` along `bearing_deg`.
[[nodiscard]] GeoPoint destination(const GeoPoint& start, double bearing_deg,
                                   double distance_km);

/// Spherical linear interpolation along the great circle from a to b;
/// t in [0, 1].
[[nodiscard]] GeoPoint interpolate(const GeoPoint& a, const GeoPoint& b,
                                   double t);

/// Area [km^2] of a spherical cap of angular radius `theta_rad`.
[[nodiscard]] double spherical_cap_area_km2(double theta_rad);

/// Fraction of the sphere's surface between latitudes [lat_lo, lat_hi] deg.
[[nodiscard]] double latitude_band_fraction(double lat_lo_deg,
                                            double lat_hi_deg);

}  // namespace leodivide::geo
