#pragma once
// Angle conversions and normalisation plus physical constants shared by the
// geodesy and orbit modules.

namespace leodivide::geo {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Mean Earth radius [km] (spherical model; the paper's capacity model does
/// not require ellipsoidal precision).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// WGS84 equatorial radius [km] and flattening, used by the ECEF conversion.
inline constexpr double kWgs84AKm = 6378.137;
inline constexpr double kWgs84F = 1.0 / 298.257223563;

/// Earth's surface area [km^2] (spherical).
inline constexpr double kEarthSurfaceAreaKm2 =
    4.0 * kPi * kEarthRadiusKm * kEarthRadiusKm;

/// Standard gravitational parameter of Earth [km^3/s^2].
inline constexpr double kMuEarth = 398600.4418;

/// Earth rotation rate [rad/s] (sidereal).
inline constexpr double kEarthRotationRadPerSec = 7.2921150e-5;

[[nodiscard]] constexpr double deg2rad(double deg) noexcept {
  return deg * kPi / 180.0;
}
[[nodiscard]] constexpr double rad2deg(double rad) noexcept {
  return rad * 180.0 / kPi;
}

/// Normalises an angle to [0, 2*pi).
[[nodiscard]] double wrap_two_pi(double rad) noexcept;

/// Normalises an angle to (-pi, pi].
[[nodiscard]] double wrap_pi(double rad) noexcept;

/// Normalises a longitude in degrees to (-180, 180].
[[nodiscard]] double wrap_longitude_deg(double deg) noexcept;

/// Clamps a latitude in degrees to [-90, 90].
[[nodiscard]] double clamp_latitude_deg(double deg) noexcept;

}  // namespace leodivide::geo
