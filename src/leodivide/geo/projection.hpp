#pragma once
// Map projections used by the hex grid. The hex index projects a region of
// interest to a plane, tiles hexagons there, and unprojects back; the
// equidistant azimuthal projection keeps distance distortion small over a
// continent-sized region, which keeps hex cell areas near-uniform.

#include "leodivide/geo/geopoint.hpp"

namespace leodivide::geo {

/// Planar point [km].
struct PlanePoint {
  double x = 0.0;
  double y = 0.0;
  friend bool operator==(const PlanePoint&, const PlanePoint&) = default;
};

/// Azimuthal equidistant projection about a center point: radial distances
/// from the center are exact great-circle distances, azimuths are preserved.
class AzimuthalEquidistant {
 public:
  explicit AzimuthalEquidistant(const GeoPoint& center);

  [[nodiscard]] PlanePoint forward(const GeoPoint& p) const;
  [[nodiscard]] GeoPoint inverse(const PlanePoint& q) const;
  [[nodiscard]] const GeoPoint& center() const noexcept { return center_; }

 private:
  GeoPoint center_;
  double sin_lat0_;
  double cos_lat0_;
  double lon0_rad_;
};

/// Equirectangular ("plate carrée") projection with a configurable standard
/// parallel; cheap and adequate for small-area sanity math.
class Equirectangular {
 public:
  explicit Equirectangular(double std_parallel_deg = 0.0);

  [[nodiscard]] PlanePoint forward(const GeoPoint& p) const noexcept;
  [[nodiscard]] GeoPoint inverse(const PlanePoint& q) const noexcept;

 private:
  double cos_phi1_;
};

}  // namespace leodivide::geo
