#include "leodivide/geo/angle.hpp"

#include <algorithm>
#include <cmath>

namespace leodivide::geo {

double wrap_two_pi(double rad) noexcept {
  double r = std::fmod(rad, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  return r;
}

double wrap_pi(double rad) noexcept {
  double r = wrap_two_pi(rad);
  if (r > kPi) r -= kTwoPi;
  return r;
}

double wrap_longitude_deg(double deg) noexcept {
  double d = std::fmod(deg, 360.0);
  if (d <= -180.0) d += 360.0;
  if (d > 180.0) d -= 360.0;
  return d;
}

double clamp_latitude_deg(double deg) noexcept {
  return std::clamp(deg, -90.0, 90.0);
}

}  // namespace leodivide::geo
