#include "leodivide/geo/ecef.hpp"

#include <cmath>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::geo {

Vec3 operator+(const Vec3& a, const Vec3& b) noexcept {
  return {a.x + b.x, a.y + b.y, a.z + b.z};
}
Vec3 operator-(const Vec3& a, const Vec3& b) noexcept {
  return {a.x - b.x, a.y - b.y, a.z - b.z};
}
Vec3 operator*(double s, const Vec3& v) noexcept {
  return {s * v.x, s * v.y, s * v.z};
}

double Vec3::norm() const noexcept { return std::sqrt(x * x + y * y + z * z); }

double Vec3::dot(const Vec3& o) const noexcept {
  return x * o.x + y * o.y + z * o.z;
}

Vec3 Vec3::cross(const Vec3& o) const noexcept {
  return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
}

Vec3 Vec3::unit() const {
  const double n = norm();
  // leolint:allow(float-eq): exact-zero guard before dividing by norm
  if (n == 0.0) throw std::domain_error("Vec3::unit: zero vector");
  return {x / n, y / n, z / n};
}

Vec3 geodetic_to_ecef(const GeoPoint& p, double alt_km) {
  const double lat = deg2rad(p.lat_deg);
  const double lon = deg2rad(p.lon_deg);
  const double e2 = kWgs84F * (2.0 - kWgs84F);
  const double sin_lat = std::sin(lat);
  const double n = kWgs84AKm / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
  return {(n + alt_km) * std::cos(lat) * std::cos(lon),
          (n + alt_km) * std::cos(lat) * std::sin(lon),
          (n * (1.0 - e2) + alt_km) * sin_lat};
}

GeoPoint ecef_to_geodetic(const Vec3& v, double* alt_km) {
  const double e2 = kWgs84F * (2.0 - kWgs84F);
  const double p = std::hypot(v.x, v.y);
  const double lon = std::atan2(v.y, v.x);
  // Bowring-style fixed-point iteration on the latitude.
  double lat = std::atan2(v.z, p * (1.0 - e2));
  double n = kWgs84AKm;
  double alt = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double sin_lat = std::sin(lat);
    n = kWgs84AKm / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
    alt = (std::abs(std::cos(lat)) > 1e-10)
              ? p / std::cos(lat) - n
              : std::abs(v.z) / std::abs(sin_lat) - n * (1.0 - e2);
    lat = std::atan2(v.z, p * (1.0 - e2 * n / (n + alt)));
  }
  if (alt_km != nullptr) *alt_km = alt;
  return GeoPoint{rad2deg(lat), rad2deg(lon)}.normalized();
}

Vec3 spherical_to_cartesian(const GeoPoint& p, double radius_km) {
  const double lat = deg2rad(p.lat_deg);
  const double lon = deg2rad(p.lon_deg);
  return {radius_km * std::cos(lat) * std::cos(lon),
          radius_km * std::cos(lat) * std::sin(lon),
          radius_km * std::sin(lat)};
}

GeoPoint cartesian_to_spherical(const Vec3& v) {
  const double r = v.norm();
  // leolint:allow(float-eq): exact-zero guard before dividing by norm
  if (r == 0.0) throw std::domain_error("cartesian_to_spherical: zero vector");
  return GeoPoint{rad2deg(std::asin(v.z / r)), rad2deg(std::atan2(v.y, v.x))}
      .normalized();
}

}  // namespace leodivide::geo
