#include "leodivide/geo/us_outline.hpp"

namespace leodivide::geo {

const Polygon& conus_outline() {
  // Vertices run counter-clockwise starting from the Pacific Northwest.
  // Hand-digitised from a small-scale map; ~1 degree fidelity.
  static const Polygon outline{std::vector<GeoPoint>{
      {48.4, -124.7},  // Cape Flattery, WA
      {46.2, -124.0}, {42.0, -124.4}, {40.4, -124.4},  // OR / N. CA coast
      {38.9, -123.7}, {36.9, -122.0}, {34.4, -120.5},  // central CA coast
      {33.7, -118.3}, {32.5, -117.1},                  // SoCal
      {32.7, -114.7}, {31.3, -111.1}, {31.8, -106.5},  // AZ/NM border
      {29.7, -104.4}, {29.3, -103.1}, {29.8, -101.4},  // Big Bend
      {27.5, -99.5},  {25.9, -97.1},                   // Rio Grande valley
      {26.0, -97.2},  {27.8, -97.0},  {29.3, -94.8},   // TX gulf coast
      {29.2, -91.0},  {29.0, -89.2},  {30.2, -88.0},   // LA / MS delta
      {30.4, -86.6},  {29.9, -84.3},  {28.9, -82.7},   // FL panhandle
      {26.7, -82.2},  {25.2, -81.1},  {25.1, -80.4},   // SW Florida
      {26.8, -80.0},  {28.5, -80.5},  {30.7, -81.4},   // FL Atlantic coast
      {32.0, -80.9},  {33.9, -78.0},  {35.2, -75.5},   // GA/SC/NC coast
      {36.9, -76.0},  {38.9, -74.9},  {40.5, -74.0},   // mid-Atlantic
      {41.3, -71.9},  {41.7, -70.0},  {43.1, -70.6},   // NY/New England
      {44.8, -66.9},  {47.3, -68.2},  {45.3, -71.1},   // Maine / NH border
      {45.0, -74.7},  {43.6, -76.5},  {43.3, -79.0},   // St Lawrence / Ontario
      {42.3, -82.9},  {43.0, -82.4},  {45.8, -84.5},   // Michigan straits
      {46.5, -84.5},  {48.0, -89.5},  {48.0, -95.1},   // Superior shore
      {49.0, -95.2},  {49.0, -123.0},                  // 49th parallel
      {48.4, -124.7}}};
  return outline;
}

double conus_area_km2() { return conus_outline().area_km2(); }

}  // namespace leodivide::geo
