#pragma once
// Simple polygons in lat/lon space with point-in-polygon and area. Used to
// clip synthetic locations and hex polyfills to the US outline.

#include <span>
#include <vector>

#include "leodivide/geo/bbox.hpp"
#include "leodivide/geo/geopoint.hpp"

namespace leodivide::geo {

/// A simple (non-self-intersecting) polygon with implicit closure between the
/// last and first vertex. Vertices are treated in planar lat/lon space, which
/// is adequate for region outlines far from the poles and the antimeridian.
class Polygon {
 public:
  /// Throws std::invalid_argument for fewer than 3 vertices.
  explicit Polygon(std::vector<GeoPoint> vertices);

  [[nodiscard]] std::span<const GeoPoint> vertices() const {
    return vertices_;
  }

  /// Even-odd rule point-in-polygon (boundary points count as inside on the
  /// lower/left edges, per the standard crossing convention).
  [[nodiscard]] bool contains(const GeoPoint& p) const noexcept;

  [[nodiscard]] const BoundingBox& bbox() const noexcept { return bbox_; }

  /// Planar signed area in deg^2 (positive if counter-clockwise).
  [[nodiscard]] double signed_area_deg2() const noexcept;

  /// Approximate surface area [km^2] using a cos(latitude)-corrected planar
  /// formula evaluated at the polygon's centroid latitude.
  [[nodiscard]] double area_km2() const noexcept;

 private:
  std::vector<GeoPoint> vertices_;
  BoundingBox bbox_;
};

}  // namespace leodivide::geo
