#include "leodivide/geo/geopoint.hpp"

#include <cmath>
#include <ostream>

#include "leodivide/geo/angle.hpp"

namespace leodivide::geo {

GeoPoint GeoPoint::normalized() const noexcept {
  return GeoPoint{clamp_latitude_deg(lat_deg), wrap_longitude_deg(lon_deg)};
}

bool GeoPoint::valid() const noexcept {
  return lat_deg >= -90.0 && lat_deg <= 90.0 && lon_deg > -180.0 &&
         lon_deg <= 180.0;
}

std::ostream& operator<<(std::ostream& os, const GeoPoint& p) {
  return os << "(" << p.lat_deg << ", " << p.lon_deg << ")";
}

bool approx_equal(const GeoPoint& a, const GeoPoint& b,
                  double eps_deg) noexcept {
  if (std::abs(a.lat_deg - b.lat_deg) > eps_deg) return false;
  double dlon = std::abs(a.lon_deg - b.lon_deg);
  dlon = std::min(dlon, 360.0 - dlon);
  return dlon <= eps_deg;
}

}  // namespace leodivide::geo
