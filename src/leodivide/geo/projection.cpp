#include "leodivide/geo/projection.hpp"

#include <algorithm>
#include <cmath>

#include "leodivide/geo/angle.hpp"

namespace leodivide::geo {

AzimuthalEquidistant::AzimuthalEquidistant(const GeoPoint& center)
    : center_(center.normalized()),
      sin_lat0_(std::sin(deg2rad(center_.lat_deg))),
      cos_lat0_(std::cos(deg2rad(center_.lat_deg))),
      lon0_rad_(deg2rad(center_.lon_deg)) {}

PlanePoint AzimuthalEquidistant::forward(const GeoPoint& p) const {
  const double lat = deg2rad(p.lat_deg);
  const double dlon = deg2rad(p.lon_deg) - lon0_rad_;
  const double cos_c = std::clamp(
      sin_lat0_ * std::sin(lat) + cos_lat0_ * std::cos(lat) * std::cos(dlon),
      -1.0, 1.0);
  const double c = std::acos(cos_c);
  if (c < 1e-12) return {0.0, 0.0};
  const double k = kEarthRadiusKm * c / std::sin(c);
  return {k * std::cos(lat) * std::sin(dlon),
          k * (cos_lat0_ * std::sin(lat) -
               sin_lat0_ * std::cos(lat) * std::cos(dlon))};
}

GeoPoint AzimuthalEquidistant::inverse(const PlanePoint& q) const {
  const double rho = std::hypot(q.x, q.y);
  if (rho < 1e-9) return center_;
  const double c = rho / kEarthRadiusKm;
  const double sin_c = std::sin(c);
  const double cos_c = std::cos(c);
  const double lat = std::asin(std::clamp(
      cos_c * sin_lat0_ + q.y * sin_c * cos_lat0_ / rho, -1.0, 1.0));
  const double lon =
      lon0_rad_ + std::atan2(q.x * sin_c,
                             rho * cos_lat0_ * cos_c - q.y * sin_lat0_ * sin_c);
  return GeoPoint{rad2deg(lat), rad2deg(lon)}.normalized();
}

Equirectangular::Equirectangular(double std_parallel_deg)
    : cos_phi1_(std::cos(deg2rad(std_parallel_deg))) {}

PlanePoint Equirectangular::forward(const GeoPoint& p) const noexcept {
  const double km_per_deg = kTwoPi * kEarthRadiusKm / 360.0;
  return {p.lon_deg * cos_phi1_ * km_per_deg, p.lat_deg * km_per_deg};
}

GeoPoint Equirectangular::inverse(const PlanePoint& q) const noexcept {
  const double km_per_deg = kTwoPi * kEarthRadiusKm / 360.0;
  return GeoPoint{q.y / km_per_deg, q.x / (cos_phi1_ * km_per_deg)}
      .normalized();
}

}  // namespace leodivide::geo
