#include "leodivide/geo/greatcircle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"
#include "leodivide/geo/ecef.hpp"

namespace leodivide::geo {

double central_angle_rad(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * std::asin(std::min(1.0, std::sqrt(h)));
}

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  return kEarthRadiusKm * central_angle_rad(a, b);
}

double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  return std::fmod(rad2deg(std::atan2(y, x)) + 360.0, 360.0);
}

GeoPoint destination(const GeoPoint& start, double bearing_deg,
                     double dist_km) {
  const double delta = dist_km / kEarthRadiusKm;
  const double theta = deg2rad(bearing_deg);
  const double lat1 = deg2rad(start.lat_deg);
  const double lon1 = deg2rad(start.lon_deg);
  const double sin_lat2 = std::sin(lat1) * std::cos(delta) +
                          std::cos(lat1) * std::sin(delta) * std::cos(theta);
  const double lat2 = std::asin(std::clamp(sin_lat2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(lat1);
  const double x = std::cos(delta) - std::sin(lat1) * sin_lat2;
  const double lon2 = lon1 + std::atan2(y, x);
  return GeoPoint{rad2deg(lat2), rad2deg(lon2)}.normalized();
}

GeoPoint interpolate(const GeoPoint& a, const GeoPoint& b, double t) {
  if (t < 0.0 || t > 1.0) throw std::invalid_argument("interpolate: t not in [0,1]");
  const double omega = central_angle_rad(a, b);
  if (omega < 1e-12) return a.normalized();
  const Vec3 va = spherical_to_cartesian(a, 1.0);
  const Vec3 vb = spherical_to_cartesian(b, 1.0);
  const double sin_omega = std::sin(omega);
  const double wa = std::sin((1.0 - t) * omega) / sin_omega;
  const double wb = std::sin(t * omega) / sin_omega;
  return cartesian_to_spherical(wa * va + wb * vb);
}

double spherical_cap_area_km2(double theta_rad) {
  if (theta_rad < 0.0 || theta_rad > kPi) {
    throw std::invalid_argument("spherical_cap_area_km2: theta out of range");
  }
  return kTwoPi * kEarthRadiusKm * kEarthRadiusKm * (1.0 - std::cos(theta_rad));
}

double latitude_band_fraction(double lat_lo_deg, double lat_hi_deg) {
  if (lat_lo_deg > lat_hi_deg) {
    throw std::invalid_argument("latitude_band_fraction: lo > hi");
  }
  const double lo = std::clamp(lat_lo_deg, -90.0, 90.0);
  const double hi = std::clamp(lat_hi_deg, -90.0, 90.0);
  return (std::sin(deg2rad(hi)) - std::sin(deg2rad(lo))) / 2.0;
}

}  // namespace leodivide::geo
