#pragma once
// Coarse outline of the contiguous United States, used to clip synthetic
// locations and hex polyfills so the national analysis has a realistic
// footprint. The outline is a hand-digitised ~60-vertex simplification; it is
// NOT survey-grade, but the paper's model only needs "inside the US" at
// service-cell (~250 km^2) granularity.

#include "leodivide/geo/polygon.hpp"

namespace leodivide::geo {

/// Simplified outline polygon of the contiguous United States (CONUS).
[[nodiscard]] const Polygon& conus_outline();

/// Approximate land area of CONUS [km^2] per the outline (for sanity checks;
/// the true figure is ~8.08M km^2 including water).
[[nodiscard]] double conus_area_km2();

}  // namespace leodivide::geo
