#include "leodivide/geo/bbox.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "leodivide/geo/angle.hpp"
#include "leodivide/geo/greatcircle.hpp"

namespace leodivide::geo {

bool BoundingBox::valid() const noexcept {
  return lat_min <= lat_max && lon_min <= lon_max && lat_min >= -90.0 &&
         lat_max <= 90.0 && lon_min >= -180.0 && lon_max <= 180.0;
}

bool BoundingBox::contains(const GeoPoint& p) const noexcept {
  return p.lat_deg >= lat_min && p.lat_deg <= lat_max &&
         p.lon_deg >= lon_min && p.lon_deg <= lon_max;
}

GeoPoint BoundingBox::center() const noexcept {
  return {(lat_min + lat_max) / 2.0, (lon_min + lon_max) / 2.0};
}

void BoundingBox::extend(const GeoPoint& p) noexcept {
  if (!valid()) {
    lat_min = lat_max = p.lat_deg;
    lon_min = lon_max = p.lon_deg;
    return;
  }
  lat_min = std::min(lat_min, p.lat_deg);
  lat_max = std::max(lat_max, p.lat_deg);
  lon_min = std::min(lon_min, p.lon_deg);
  lon_max = std::max(lon_max, p.lon_deg);
}

double BoundingBox::area_km2() const {
  if (!valid()) return 0.0;
  const double band = latitude_band_fraction(lat_min, lat_max);
  return kEarthSurfaceAreaKm2 * band * (lon_max - lon_min) / 360.0;
}

bool BoundingBox::intersects(const BoundingBox& o) const noexcept {
  return lat_min <= o.lat_max && o.lat_min <= lat_max && lon_min <= o.lon_max &&
         o.lon_min <= lon_max;
}

BoundingBox BoundingBox::empty() noexcept {
  return {1.0, -1.0, 1.0, -1.0};  // deliberately invalid
}

std::ostream& operator<<(std::ostream& os, const BoundingBox& b) {
  return os << "[lat " << b.lat_min << ".." << b.lat_max << ", lon "
            << b.lon_min << ".." << b.lon_max << "]";
}

BoundingBox conus_bbox() noexcept { return {24.4, 49.4, -124.8, -66.9}; }

}  // namespace leodivide::geo
