#pragma once
// Geodetic coordinates (latitude/longitude in degrees).

#include <iosfwd>

namespace leodivide::geo {

/// A point on the Earth's surface in geodetic coordinates [degrees].
/// Latitude in [-90, 90], longitude in (-180, 180].
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  /// Returns a copy with latitude clamped and longitude wrapped to the
  /// canonical ranges.
  [[nodiscard]] GeoPoint normalized() const noexcept;

  /// True if latitude and longitude are both within canonical ranges.
  [[nodiscard]] bool valid() const noexcept;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

std::ostream& operator<<(std::ostream& os, const GeoPoint& p);

/// Approximate equality within `eps_deg` degrees on both axes (longitude
/// compared modulo 360).
[[nodiscard]] bool approx_equal(const GeoPoint& a, const GeoPoint& b,
                                double eps_deg = 1e-9) noexcept;

}  // namespace leodivide::geo
