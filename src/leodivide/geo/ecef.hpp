#pragma once
// Earth-Centered Earth-Fixed cartesian coordinates and conversions from/to
// geodetic coordinates (WGS84 ellipsoid).

#include "leodivide/geo/geopoint.hpp"

namespace leodivide::geo {

/// Cartesian vector in km. Used both for ECEF positions and ECI positions
/// (the orbit module rotates between the frames).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend Vec3 operator+(const Vec3& a, const Vec3& b) noexcept;
  friend Vec3 operator-(const Vec3& a, const Vec3& b) noexcept;
  friend Vec3 operator*(double s, const Vec3& v) noexcept;
  friend bool operator==(const Vec3&, const Vec3&) = default;

  [[nodiscard]] double norm() const noexcept;
  [[nodiscard]] double dot(const Vec3& o) const noexcept;
  [[nodiscard]] Vec3 cross(const Vec3& o) const noexcept;
  /// Unit vector; throws std::domain_error for the zero vector.
  [[nodiscard]] Vec3 unit() const;
};

/// Geodetic (lat, lon, altitude above ellipsoid [km]) -> ECEF [km].
[[nodiscard]] Vec3 geodetic_to_ecef(const GeoPoint& p, double alt_km = 0.0);

/// ECEF [km] -> geodetic. Iterative (Bowring) solution, accurate to < 1e-9 deg
/// for positions from the surface to LEO altitudes. Returns altitude via the
/// out-parameter when non-null.
[[nodiscard]] GeoPoint ecef_to_geodetic(const Vec3& v,
                                        double* alt_km = nullptr);

/// Spherical-Earth variant used by the orbit module, where the paper-level
/// model treats the Earth as a sphere of radius kEarthRadiusKm.
[[nodiscard]] Vec3 spherical_to_cartesian(const GeoPoint& p, double radius_km);
[[nodiscard]] GeoPoint cartesian_to_spherical(const Vec3& v);

}  // namespace leodivide::geo
