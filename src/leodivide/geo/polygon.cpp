#include "leodivide/geo/polygon.hpp"

#include <cmath>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::geo {

Polygon::Polygon(std::vector<GeoPoint> vertices)
    : vertices_(std::move(vertices)), bbox_(BoundingBox::empty()) {
  if (vertices_.size() < 3) {
    throw std::invalid_argument("Polygon: need >= 3 vertices");
  }
  for (const auto& v : vertices_) bbox_.extend(v);
}

bool Polygon::contains(const GeoPoint& p) const noexcept {
  if (!bbox_.contains(p)) return false;
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const auto& a = vertices_[i];
    const auto& b = vertices_[j];
    const bool crosses = (a.lat_deg > p.lat_deg) != (b.lat_deg > p.lat_deg);
    if (crosses) {
      const double x_at = (b.lon_deg - a.lon_deg) * (p.lat_deg - a.lat_deg) /
                              (b.lat_deg - a.lat_deg) +
                          a.lon_deg;
      if (p.lon_deg < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polygon::signed_area_deg2() const noexcept {
  double acc = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    acc += (vertices_[j].lon_deg + vertices_[i].lon_deg) *
           (vertices_[i].lat_deg - vertices_[j].lat_deg);
  }
  return acc / 2.0;
}

double Polygon::area_km2() const noexcept {
  const double lat_mid = deg2rad((bbox_.lat_min + bbox_.lat_max) / 2.0);
  const double km_per_deg = kTwoPi * kEarthRadiusKm / 360.0;
  return std::abs(signed_area_deg2()) * km_per_deg * km_per_deg *
         std::cos(lat_mid);
}

}  // namespace leodivide::geo
