#pragma once
// Beamspreading (Section 3.0.2): serving multiple cells with one beam lets a
// satellite cover more cells than it has beams, at the cost of dividing the
// beam's channel capacity among the cells it covers.

#include "leodivide/core/capacity_model.hpp"

namespace leodivide::core {

/// Capacity each cell receives when the full cell capacity is spread over
/// `beamspread` cells [Gbps].
[[nodiscard]] double spread_cell_capacity_gbps(
    const SatelliteCapacityModel& model, double beamspread);

/// Whether a cell with `locations` is served within `oversub`:1 when its
/// capacity is the spread capacity C / beamspread (the Figure-2 criterion).
[[nodiscard]] bool cell_served(const SatelliteCapacityModel& model,
                               std::uint32_t locations, double beamspread,
                               double oversub);

/// Max locations servable per cell under (beamspread, oversub).
[[nodiscard]] std::uint32_t max_locations_spread(
    const SatelliteCapacityModel& model, double beamspread, double oversub);

}  // namespace leodivide::core
