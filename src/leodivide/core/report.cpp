#include "leodivide/core/report.hpp"

#include <cmath>
#include <sstream>

#include "leodivide/io/table.hpp"

namespace leodivide::core {

using io::fmt;
using io::fmt_count;
using io::fmt_pct;

std::string render_table1(const Table1Summary& t) {
  io::TextTable table;
  table.set_header({"Parameter", "Value"});
  table.add_row({"UT downlink spectrum", fmt(t.ut_downlink_mhz, 0) + " MHz"});
  table.add_row({"Total spectrum (incl. GW)", fmt(t.total_mhz, 0) + " MHz"});
  table.add_row({"UT beams / total beams",
                 std::to_string(t.ut_beams) + " / " +
                     std::to_string(t.total_beams)});
  table.add_row({"Spectral efficiency",
                 fmt(t.spectral_efficiency, 1) + " bps/Hz"});
  table.add_row({"Max per-cell capacity",
                 fmt(t.max_cell_capacity_gbps, 3) + " Gbps"});
  table.add_row({"Peak cell users", fmt_count(t.peak_cell_users)});
  table.add_row({"FCC throughput requirement",
                 fmt(t.required_down_mbps, 0) + "/" +
                     fmt(t.required_up_mbps, 0) + " Mbps (DL/UL)"});
  table.add_row({"Peak cell DL demand",
                 fmt(t.peak_cell_demand_gbps, 1) + " Gbps"});
  std::string oversub = "~";
  oversub += fmt(t.max_oversubscription, 1);
  oversub += ":1";
  table.add_row({"Max DL oversubscription", oversub});
  return table.render();
}

std::string render_f1(const OversubscriptionReport& r) {
  std::ostringstream os;
  os << "F1: peak-cell oversubscription " << fmt(r.peak_oversubscription, 1)
     << ":1; at 20:1 a full-capacity cell serves "
     << fmt_count(r.max_locations_at_cap) << " locations.\n"
     << "    Full service: " << fmt_count(static_cast<long long>(
            r.locations_above_cap))
     << " locations (" << fmt_pct(static_cast<double>(r.locations_above_cap) /
                                      static_cast<double>(r.total_locations))
     << " of " << fmt_count(static_cast<long long>(r.total_locations))
     << ") served above the cap across " << r.cells_above_cap << " cells.\n"
     << "    Capped at 20:1: "
     << fmt_count(static_cast<long long>(r.locations_unservable_at_cap))
     << " locations unservable -> "
     << fmt_pct(r.servable_fraction_at_cap) << " of locations servable.\n";
  return os.str();
}

std::string render_table2(const std::vector<Table2Row>& rows) {
  io::TextTable table;
  table.set_header({"Beamspread factor", "Constellation size (full service)",
                    "Constellation size (max 20:1 oversub.)"});
  for (const auto& r : rows) {
    table.add_row({fmt(r.beamspread, 0),
                   fmt_count(std::llround(r.satellites_full_service)),
                   fmt_count(std::llround(r.satellites_capped))});
  }
  return table.render();
}

std::string render_fig2(const std::vector<double>& beamspreads,
                        const std::vector<double>& oversubs,
                        const std::vector<std::vector<double>>& grid) {
  io::TextTable table;
  std::vector<std::string> header{"beamspread \\ oversub"};
  for (double o : oversubs) header.push_back(fmt(o, 0));
  table.set_header(std::move(header));
  for (std::size_t i = 0; i < beamspreads.size(); ++i) {
    std::vector<std::string> row{fmt(beamspreads[i], 0)};
    for (double v : grid[i]) row.push_back(fmt(v, 3));
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_fig3(const std::vector<Fig3Curve>& curves) {
  io::TextTable table;
  table.set_header({"Beamspread", "Oversub", "Steps",
                    "Unservable residue", "Max satellites",
                    "Cheapest step"});
  for (const auto& c : curves) {
    const auto& pts = c.points;
    table.add_row({fmt(c.beamspread, 0), fmt(c.oversub, 0),
                   std::to_string(pts.size()),
                   fmt_count(static_cast<long long>(
                       pts.front().locations_unserved)),
                   fmt_count(std::llround(pts.front().satellites)),
                   fmt_count(std::llround(pts.back().satellites))});
  }
  return table.render();
}

std::string render_fig4(const std::vector<afford::PlanAffordability>& plans) {
  io::TextTable table;
  table.set_header({"Plan", "$/month", "Income needed (2%)",
                    "Locations unable", "Fraction"});
  for (const auto& p : plans) {
    table.add_row({p.plan.name, fmt(p.plan.monthly_usd, 2),
                   fmt_count(std::llround(p.income_required_usd)),
                   fmt_count(std::llround(p.locations_unable)),
                   fmt_pct(p.fraction_unable, 1)});
  }
  return table.render();
}

std::string render_report(const AnalysisResults& results) {
  std::ostringstream os;
  os << "== Table 1: Starlink single-satellite capacity model ==\n"
     << render_table1(results.table1) << '\n'
     << "== F1: oversubscription ==\n"
     << render_f1(results.f1) << '\n'
     << "== Table 2: predicted constellation size ==\n"
     << render_table2(results.table2) << '\n'
     << "== Figure 2: fraction of US cells served ==\n"
     << render_fig2(results.fig2_beamspreads, results.fig2_oversubs,
                    results.fig2_grid)
     << '\n'
     << "== Figure 3: diminishing returns (long tail) ==\n"
     << render_fig3(results.fig3) << '\n'
     << "== Figure 4: affordability ==\n"
     << render_fig4(results.fig4);
  return os.str();
}

}  // namespace leodivide::core
