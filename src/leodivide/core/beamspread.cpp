#include "leodivide/core/beamspread.hpp"

#include <cmath>
#include <stdexcept>

namespace leodivide::core {

double spread_cell_capacity_gbps(const SatelliteCapacityModel& model,
                                 double beamspread) {
  return model.plan().spread_cell_capacity_gbps(beamspread);
}

bool cell_served(const SatelliteCapacityModel& model, std::uint32_t locations,
                 double beamspread, double oversub) {
  if (oversub <= 0.0) {
    throw std::invalid_argument("cell_served: oversub must be > 0");
  }
  return model.cell_demand_gbps(locations) <=
         spread_cell_capacity_gbps(model, beamspread) * oversub;
}

std::uint32_t max_locations_spread(const SatelliteCapacityModel& model,
                                   double beamspread, double oversub) {
  if (oversub <= 0.0) {
    throw std::invalid_argument("max_locations_spread: oversub must be > 0");
  }
  return static_cast<std::uint32_t>(
      std::floor(spread_cell_capacity_gbps(model, beamspread) * oversub /
                 demand::location_demand_gbps()));
}

}  // namespace leodivide::core
