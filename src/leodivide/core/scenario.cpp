#include "leodivide/core/scenario.hpp"

#include "leodivide/obs/trace.hpp"

namespace leodivide::core {

AnalysisResults run_full_analysis(const demand::DemandProfile& profile,
                                  const SizingModel& model,
                                  const AnalysisConfig& config) {
  const obs::Span span("core.run_full_analysis");
  AnalysisResults out;
  out.table1 = model.capacity.table1(profile);
  out.f1 = analyze_oversubscription(profile, model.capacity,
                                    config.oversub_cap);

  for (double s : config.table2_beamspreads) {
    Table2Row row;
    row.beamspread = s;
    row.satellites_full_service =
        size_full_service(profile, model, s).satellites;
    row.satellites_capped =
        size_with_cap(profile, model, s, config.oversub_cap).satellites;
    out.table2.push_back(row);
  }

  out.fig2_beamspreads = config.fig2_beamspreads;
  out.fig2_oversubs = config.fig2_oversubs;
  out.fig2_grid = served_fraction_grid(profile, model.capacity,
                                       config.fig2_beamspreads,
                                       config.fig2_oversubs);

  for (const auto& [s, o] : config.fig3_curves) {
    Fig3Curve curve;
    curve.beamspread = s;
    curve.oversub = o;
    curve.points = longtail_curve(profile, model, s, o);
    out.fig3.push_back(std::move(curve));
  }

  const afford::AffordabilityAnalyzer analyzer(profile);
  out.fig4 = analyzer.evaluate_paper_plans();
  out.fig4_lifeline_threshold_income = afford::income_required_usd(
      afford::starlink_residential_lifeline().monthly_usd);
  out.fig4_starlink_threshold_income =
      afford::income_required_usd(afford::starlink_residential().monthly_usd);
  return out;
}

}  // namespace leodivide::core
