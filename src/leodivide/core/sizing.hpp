#pragma once
// Constellation sizing (Section 3.0.2, Table 2, Finding F2). The paper's
// lower-bound model:
//
//   * The satellite over the binding (bandwidth-neediest) cell dedicates
//     b beams to it; each of its remaining (B - b) user beams is spread
//     across `beamspread` cells, so that satellite covers
//     1 + (B - b) * beamspread cells.
//   * The constellation must therefore supply one satellite per that many
//     cells *at the binding cell's location*. Walker geometry converts the
//     local density requirement into a total constellation size via the
//     latitude density model (orbit/density.hpp):
//         N = K(phi) / (1 + (B - b) * s),
//     K(phi) = 2 pi^2 R^2 sqrt(sin^2 i - sin^2 phi) / A_cell.
//
// Per P2, sizing is driven by peak *demand* density: the binding cell is
// the demand cell whose requirement maximises N, not baseline coverage.

#include <cstddef>

#include "leodivide/core/capacity_model.hpp"
#include "leodivide/hex/hexgrid.hpp"

namespace leodivide::runtime {
class Executor;
}

namespace leodivide::core {

/// Sizing parameters beyond the capacity model.
struct SizingModel {
  SatelliteCapacityModel capacity;
  double inclination_deg = 53.0;  ///< Starlink shell-1
  double cell_area_km2 = hex::cell_area_km2(hex::kServiceCellResolution);
};

/// K(phi): satellites-per-covered-cell scale factor at a latitude — the
/// total constellation size that yields exactly one satellite per cell of
/// area cell_area_km2 at that latitude.
[[nodiscard]] double coverage_units(const SizingModel& model, double lat_deg);

/// N = K(phi) / (1 + (B - beams_on_binding) * beamspread).
[[nodiscard]] double satellites_for_binding_cell(const SizingModel& model,
                                                 double lat_deg,
                                                 double beamspread,
                                                 std::uint32_t beams_on_binding);

/// Calibrated variant: N = k / (1 + (B - beams_on_binding) * beamspread)
/// with k supplied directly (e.g. the paper's reverse-engineered constants).
[[nodiscard]] double satellites_from_k(const SizingModel& model, double k,
                                       double beamspread,
                                       std::uint32_t beams_on_binding);

/// Result of sizing against a demand profile.
struct SizingResult {
  double satellites = 0.0;
  double binding_lat_deg = 0.0;
  std::uint32_t beams_on_binding = 0;
  std::size_t binding_cell_index = 0;  ///< index into profile.cells()

  // Exact comparison on purpose: sizing is deterministic, and callers
  // (serve/ paranoid mode, golden tests) check bit-for-bit agreement.
  friend bool operator==(const SizingResult&, const SizingResult&) = default;
};

/// Full-service deployment (F1 option A): every location served, unbounded
/// oversubscription. Per the paper's generous lower-bound assumption, the
/// peak-demand cell takes the full beams_per_full_cell and no other cell
/// needs more than one beam, so the peak cell is the binding cell.
[[nodiscard]] SizingResult size_full_service(
    const demand::DemandProfile& profile, const SizingModel& model,
    double beamspread);

/// Capped deployment (F1 option B): per-cell service is truncated at
/// `oversub_cap`:1 of the full cell capacity; each cell needs
/// beams_needed(served, cap) beams, and the binding cell is the
/// demand-driven (>= 2 beams) cell maximising the satellite requirement.
/// Falls back to the peak cell when no cell needs more than one beam.
/// The per-cell sweep runs as a sharded first-strict-max reduction over
/// `executor`; the selected binding cell is identical for every thread
/// count (earliest cell wins exact ties, as in the serial scan).
[[nodiscard]] SizingResult size_with_cap(const demand::DemandProfile& profile,
                                         const SizingModel& model,
                                         double beamspread,
                                         double oversub_cap,
                                         runtime::Executor& executor);

/// As above, on the process-global executor (LEODIVIDE_THREADS).
[[nodiscard]] SizingResult size_with_cap(const demand::DemandProfile& profile,
                                         const SizingModel& model,
                                         double beamspread,
                                         double oversub_cap);

}  // namespace leodivide::core
