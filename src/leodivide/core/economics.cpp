#include "leodivide/core/economics.hpp"

#include <algorithm>
#include <stdexcept>

namespace leodivide::core {

double CostModel::annual_fleet_cost_usd(double satellites) const {
  if (satellites < 0.0) {
    throw std::invalid_argument("annual_fleet_cost_usd: negative fleet");
  }
  if (cost_per_satellite_usd <= 0.0 || satellite_lifetime_years <= 0.0) {
    throw std::invalid_argument("CostModel: non-positive parameters");
  }
  return satellites * cost_per_satellite_usd / satellite_lifetime_years;
}

std::vector<ServingEconomics> longtail_economics(
    const std::vector<LongTailPoint>& curve, std::uint64_t total_locations,
    const CostModel& cost) {
  if (curve.empty()) {
    throw std::invalid_argument("longtail_economics: empty curve");
  }
  if (total_locations == 0) {
    throw std::invalid_argument("longtail_economics: zero locations");
  }
  // Order from fewest served (largest unserved) to most served.
  std::vector<LongTailPoint> ordered(curve.begin(), curve.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const LongTailPoint& a, const LongTailPoint& b) {
              return a.locations_unserved > b.locations_unserved;
            });
  std::vector<ServingEconomics> out;
  out.reserve(ordered.size());
  for (const auto& p : ordered) {
    ServingEconomics e;
    e.locations_unserved = p.locations_unserved;
    e.satellites = p.satellites;
    e.annual_cost_usd = cost.annual_fleet_cost_usd(p.satellites);
    e.locations_served = total_locations > p.locations_unserved
                             ? total_locations - p.locations_unserved
                             : 0;
    e.cost_per_location_year_usd =
        e.locations_served == 0
            ? 0.0
            : e.annual_cost_usd / static_cast<double>(e.locations_served);
    if (!out.empty()) {
      const auto& prev = out.back();
      const double extra_locs = static_cast<double>(e.locations_served) -
                                static_cast<double>(prev.locations_served);
      const double extra_cost = e.annual_cost_usd - prev.annual_cost_usd;
      e.marginal_cost_per_location_year_usd =
          extra_locs > 0.0 ? extra_cost / extra_locs : 0.0;
    }
    out.push_back(e);
  }
  return out;
}

double annual_revenue_ceiling_usd(
    const afford::AffordabilityAnalyzer& analyzer,
    const afford::ServicePlan& plan) {
  const afford::PlanAffordability r = analyzer.evaluate(plan);
  const double affordable =
      analyzer.income().total_locations() - r.locations_unable;
  return affordable * plan.monthly_usd * 12.0;
}

}  // namespace leodivide::core
