#include "leodivide/core/oversubscription.hpp"

namespace leodivide::core {

OversubscriptionReport analyze_oversubscription(
    const demand::DemandProfile& profile, const SatelliteCapacityModel& model,
    double oversub_cap) {
  OversubscriptionReport r;
  r.cell_capacity_gbps = model.cell_capacity_gbps();
  r.peak_oversubscription =
      model.required_oversubscription(profile.peak_cell_count());
  r.max_locations_at_cap = model.max_locations_at(oversub_cap);
  for (const auto& cell : profile.cells()) {
    r.total_locations += cell.underserved;
    if (cell.underserved > r.max_locations_at_cap) {
      ++r.cells_above_cap;
      r.locations_above_cap += cell.underserved;
      r.locations_unservable_at_cap +=
          cell.underserved - r.max_locations_at_cap;
    }
  }
  r.servable_fraction_at_cap =
      r.total_locations == 0
          ? 1.0
          : 1.0 - static_cast<double>(r.locations_unservable_at_cap) /
                      static_cast<double>(r.total_locations);
  return r;
}

}  // namespace leodivide::core
