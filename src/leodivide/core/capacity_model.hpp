#pragma once
// The single-satellite capacity model of the paper's Table 1: spectrum in,
// per-cell capacity and peak-cell oversubscription out.

#include "leodivide/demand/dataset.hpp"
#include "leodivide/spectrum/beamplan.hpp"

namespace leodivide::core {

/// Everything Table 1 reports.
struct Table1Summary {
  double ut_downlink_mhz = 0.0;       ///< 3850 MHz
  double total_mhz = 0.0;             ///< 8850 MHz
  std::uint32_t ut_beams = 0;         ///< 24
  std::uint32_t total_beams = 0;      ///< 28
  double spectral_efficiency = 0.0;   ///< 4.5 bps/Hz
  double max_cell_capacity_gbps = 0.0;///< ~17.3 Gbps
  std::uint32_t peak_cell_users = 0;  ///< 5998
  double required_down_mbps = 0.0;    ///< 100 (FCC)
  double required_up_mbps = 0.0;      ///< 20 (FCC)
  double peak_cell_demand_gbps = 0.0; ///< 599.8 Gbps
  double max_oversubscription = 0.0;  ///< ~35:1

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const Table1Summary&, const Table1Summary&) = default;
};

/// The paper's primary capacity model: a beam plan applied to a demand
/// profile.
class SatelliteCapacityModel {
 public:
  /// Defaults to the paper's Starlink beam plan.
  SatelliteCapacityModel();
  explicit SatelliteCapacityModel(spectrum::BeamPlan plan);

  [[nodiscard]] const spectrum::BeamPlan& plan() const noexcept {
    return plan_;
  }

  /// Max capacity deliverable to one cell [Gbps].
  [[nodiscard]] double cell_capacity_gbps() const noexcept {
    return plan_.full_cell_capacity_gbps();
  }

  /// Capacity of one beam [Gbps].
  [[nodiscard]] double beam_capacity_gbps() const noexcept {
    return plan_.per_beam_capacity_gbps();
  }

  /// Downlink demand of a cell with `locations` un(der)served locations
  /// [Gbps] at the federal 100 Mbps per location.
  [[nodiscard]] double cell_demand_gbps(std::uint32_t locations) const;

  /// Oversubscription ratio required to serve `locations` from the full
  /// cell capacity.
  [[nodiscard]] double required_oversubscription(
      std::uint32_t locations) const;

  /// Locations servable from full cell capacity at `oversub`:1.
  [[nodiscard]] std::uint32_t max_locations_at(double oversub) const;

  /// Beams needed to serve `locations` at `oversub`:1, at most
  /// beams_per_full_cell (returns beams_per_full_cell when demand exceeds
  /// even the full capacity — capacity is then the binding limit).
  [[nodiscard]] std::uint32_t beams_needed(std::uint32_t locations,
                                           double oversub) const;

  /// Builds the Table 1 summary for a demand profile.
  [[nodiscard]] Table1Summary table1(
      const demand::DemandProfile& profile) const;

 private:
  spectrum::BeamPlan plan_;
};

}  // namespace leodivide::core
