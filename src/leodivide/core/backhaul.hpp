#pragma once
// EXTENSION (not in the paper): gateway backhaul adequacy.
//
// Every bit a satellite pours into user cells must first arrive over a
// feeder uplink from a gateway (bent-pipe) or over ISLs from a satellite
// that has one. The paper notes the 16 flexible UT/GW beams "add another
// layer of complexity" and sets the issue aside; this module provides the
// first-order check: can a satellite's feeder capacity sustain its user
// beams at full tilt, and how many gateway sites does CONUS need?

#include "leodivide/core/capacity_model.hpp"

namespace leodivide::core {

/// Feeder-link model parameters.
struct BackhaulModel {
  /// Feeder (gateway->satellite) spectrum per gateway link [MHz]:
  /// 2100 MHz of Ka plus 5000 MHz of E-band.
  double feeder_mhz = 7100.0;
  /// Feeder spectral efficiency [bps/Hz]; high-gain dishes on both ends.
  double bps_per_hz = 4.5;
  /// Simultaneous gateway links per satellite.
  std::uint32_t feeder_links = 2;
  /// Gateway antennas per gateway site (typical Starlink site has 8-9
  /// radomes, each tracking one satellite).
  std::uint32_t antennas_per_site = 8;
};

/// Result of the adequacy check for one satellite.
struct BackhaulReport {
  double user_capacity_gbps = 0.0;     ///< all 24 UT beams at full tilt
  double feeder_capacity_gbps = 0.0;   ///< all feeder links combined
  /// feeder / user: >= 1 means bent-pipe backhaul sustains full user load.
  double adequacy_ratio = 0.0;
  /// Fraction of user capacity usable without ISLs.
  double bent_pipe_fraction = 0.0;
};

/// Checks one satellite's feeder adequacy under a capacity model.
[[nodiscard]] BackhaulReport analyze_backhaul(
    const SatelliteCapacityModel& model, const BackhaulModel& backhaul);

/// Gateway sites needed so every satellite over a region of `region_area_km2`
/// can hold `feeder_links` gateway connections, given satellites serve from
/// `altitude_km` with a gateway elevation mask of `min_elevation_deg`.
/// First-order: sites = ceil(simultaneous satellites over region *
/// feeder_links / antennas_per_site), with the satellite count derived from
/// the constellation density at `lat_deg`.
[[nodiscard]] double gateway_sites_needed(const BackhaulModel& backhaul,
                                          double constellation_size,
                                          double inclination_deg,
                                          double lat_deg,
                                          double region_area_km2);

}  // namespace leodivide::core
