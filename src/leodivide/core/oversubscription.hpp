#pragma once
// Oversubscription analysis (Section 3.0.1, Finding F1): how far ISP-style
// oversubscription stretches the per-cell channel capacity, and what the
// FCC's 20:1 fixed-wireless cap leaves unserved.

#include <cstdint>

#include "leodivide/core/capacity_model.hpp"

namespace leodivide::core {

/// The FCC's maximum oversubscription for terrestrial unlicensed fixed
/// wireless providers — the paper's benchmark for "acceptable".
inline constexpr double kFccOversubscriptionCap = 20.0;

/// F1's quantities for a demand profile.
struct OversubscriptionReport {
  double cell_capacity_gbps = 0.0;
  double peak_oversubscription = 0.0;     ///< ~35:1 at the peak cell
  std::uint32_t max_locations_at_cap = 0; ///< 3465 at 20:1
  std::uint64_t total_locations = 0;
  /// Locations in cells whose required oversubscription exceeds the cap —
  /// served at >cap:1 in a full-service deployment (22,428).
  std::uint64_t locations_above_cap = 0;
  /// Locations that cannot be served at all within the cap (5103): the
  /// per-cell excess beyond max_locations_at_cap.
  std::uint64_t locations_unservable_at_cap = 0;
  /// Cells whose demand exceeds the cap (5).
  std::uint32_t cells_above_cap = 0;
  /// Fraction of locations servable within the cap (0.9989).
  double servable_fraction_at_cap = 0.0;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const OversubscriptionReport&,
                         const OversubscriptionReport&) = default;
};

/// Evaluates F1 for a profile at `oversub_cap`:1 (default the FCC 20:1).
[[nodiscard]] OversubscriptionReport analyze_oversubscription(
    const demand::DemandProfile& profile, const SatelliteCapacityModel& model,
    double oversub_cap = kFccOversubscriptionCap);

}  // namespace leodivide::core
