#include "leodivide/core/sizing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/orbit/density.hpp"
#include "leodivide/runtime/map_reduce.hpp"

namespace leodivide::core {

double coverage_units(const SizingModel& model, double lat_deg) {
  // One satellite per cell at lat_deg: required density = 1 / A_cell.
  return orbit::constellation_size_for_density(1.0 / model.cell_area_km2,
                                               lat_deg,
                                               model.inclination_deg);
}

double satellites_for_binding_cell(const SizingModel& model, double lat_deg,
                                   double beamspread,
                                   std::uint32_t beams_on_binding) {
  return satellites_from_k(model, coverage_units(model, lat_deg), beamspread,
                           beams_on_binding);
}

double satellites_from_k(const SizingModel& model, double k, double beamspread,
                         std::uint32_t beams_on_binding) {
  if (k <= 0.0) throw std::invalid_argument("satellites_from_k: k must be > 0");
  const double cells = model.capacity.plan().cells_served_per_satellite(
      beamspread, beams_on_binding);
  return k / cells;
}

SizingResult size_full_service(const demand::DemandProfile& profile,
                               const SizingModel& model, double beamspread) {
  if (profile.cell_count() == 0) {
    throw std::invalid_argument("size_full_service: empty profile");
  }
  const auto order = profile.cells_by_count_desc();
  const std::size_t peak = order.front();
  const auto beams = model.capacity.plan().beams_per_full_cell();
  SizingResult r;
  r.binding_cell_index = peak;
  r.binding_lat_deg = profile.cells()[peak].center.lat_deg;
  r.beams_on_binding = beams;
  r.satellites =
      satellites_for_binding_cell(model, r.binding_lat_deg, beamspread, beams);
  return r;
}

SizingResult size_with_cap(const demand::DemandProfile& profile,
                           const SizingModel& model, double beamspread,
                           double oversub_cap, runtime::Executor& executor) {
  if (profile.cell_count() == 0) {
    throw std::invalid_argument("size_with_cap: empty profile");
  }
  const obs::Span span("core.size_with_cap");
  if (obs::metrics_enabled()) {
    static obs::Counter& cells =
        obs::registry().counter("core.size_with_cap.cells");
    cells.add(profile.cell_count());
  }
  const std::uint32_t cap_locs = model.capacity.max_locations_at(oversub_cap);
  // Sharded first-strict-max over the cells: each shard keeps its earliest
  // maximum and the in-order merge keeps the globally earliest, so the
  // binding cell matches the serial scan for every thread count.
  struct Shard {
    SizingResult best;
    bool found = false;
  };
  const Shard reduced = runtime::map_reduce<Shard>(
      executor, 0, profile.cell_count(),
      [&profile, cap_locs, &model, beamspread, oversub_cap](
          Shard& shard, std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& cell = profile.cells()[i];
          const std::uint32_t served = std::min(cell.underserved, cap_locs);
          const std::uint32_t beams =
              model.capacity.beams_needed(served, oversub_cap);
          if (beams < 2) continue;  // demand-driven binding needs >= 2 beams
          const double sats = satellites_for_binding_cell(
              model, cell.center.lat_deg, beamspread, beams);
          if (!shard.found || sats > shard.best.satellites) {
            shard.found = true;
            shard.best.satellites = sats;
            shard.best.binding_lat_deg = cell.center.lat_deg;
            shard.best.beams_on_binding = beams;
            shard.best.binding_cell_index = i;
          }
        }
      },
      [](Shard& into, Shard&& from) {
        if (from.found &&
            (!into.found || from.best.satellites > into.best.satellites)) {
          into = from;
        }
      },
      /*grain=*/1024);
  SizingResult best = reduced.best;
  const bool found = reduced.found;
  if (!found) {
    // No cell needs more than one beam at this cap: the peak cell binds
    // with a single beam.
    const auto order = profile.cells_by_count_desc();
    const std::size_t peak = order.front();
    best.binding_cell_index = peak;
    best.binding_lat_deg = profile.cells()[peak].center.lat_deg;
    best.beams_on_binding = 1;
    best.satellites = satellites_for_binding_cell(model, best.binding_lat_deg,
                                                  beamspread, 1);
  }
  return best;
}

SizingResult size_with_cap(const demand::DemandProfile& profile,
                           const SizingModel& model, double beamspread,
                           double oversub_cap) {
  return size_with_cap(profile, model, beamspread, oversub_cap,
                       runtime::global_executor());
}

}  // namespace leodivide::core
