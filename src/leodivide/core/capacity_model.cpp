#include "leodivide/core/capacity_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leodivide::core {

SatelliteCapacityModel::SatelliteCapacityModel()
    : SatelliteCapacityModel(spectrum::starlink_beam_plan()) {}

SatelliteCapacityModel::SatelliteCapacityModel(spectrum::BeamPlan plan)
    : plan_(std::move(plan)) {}

double SatelliteCapacityModel::cell_demand_gbps(
    std::uint32_t locations) const {
  return static_cast<double>(locations) * demand::location_demand_gbps();
}

double SatelliteCapacityModel::required_oversubscription(
    std::uint32_t locations) const {
  return cell_demand_gbps(locations) / cell_capacity_gbps();
}

std::uint32_t SatelliteCapacityModel::max_locations_at(double oversub) const {
  if (oversub <= 0.0) {
    throw std::invalid_argument("max_locations_at: oversub must be > 0");
  }
  return static_cast<std::uint32_t>(std::floor(
      cell_capacity_gbps() * oversub / demand::location_demand_gbps()));
}

std::uint32_t SatelliteCapacityModel::beams_needed(std::uint32_t locations,
                                                   double oversub) const {
  if (oversub <= 0.0) {
    throw std::invalid_argument("beams_needed: oversub must be > 0");
  }
  if (locations == 0) return 0;
  const double beams = std::ceil(cell_demand_gbps(locations) /
                                 (oversub * beam_capacity_gbps()));
  const double cap = static_cast<double>(plan_.beams_per_full_cell());
  return static_cast<std::uint32_t>(std::min(beams, cap));
}

Table1Summary SatelliteCapacityModel::table1(
    const demand::DemandProfile& profile) const {
  Table1Summary t;
  t.ut_downlink_mhz = plan_.spectrum().user_downlink_mhz();
  t.total_mhz = plan_.spectrum().total_mhz();
  t.ut_beams = plan_.spectrum().user_beams();
  t.total_beams = plan_.spectrum().total_beams();
  t.spectral_efficiency = plan_.spectral_efficiency();
  t.max_cell_capacity_gbps = cell_capacity_gbps();
  t.peak_cell_users = profile.peak_cell_count();
  t.required_down_mbps = demand::kReliableDownMbps;
  t.required_up_mbps = demand::kReliableUpMbps;
  t.peak_cell_demand_gbps = cell_demand_gbps(t.peak_cell_users);
  t.max_oversubscription = required_oversubscription(t.peak_cell_users);
  return t;
}

}  // namespace leodivide::core
