#pragma once
// The Figure-2 sweep: fraction of US cells served as a function of
// beamspread and maximum acceptable oversubscription.

#include <vector>

#include "leodivide/core/capacity_model.hpp"

namespace leodivide::core {

/// Fraction of the profile's cells that receive adequate service under
/// (beamspread, oversub): demand <= (C / beamspread) * oversub.
[[nodiscard]] double served_cell_fraction(const demand::DemandProfile& profile,
                                          const SatelliteCapacityModel& model,
                                          double beamspread, double oversub);

/// Fraction of *locations* in served cells (the location-weighted variant).
[[nodiscard]] double served_location_fraction(
    const demand::DemandProfile& profile, const SatelliteCapacityModel& model,
    double beamspread, double oversub);

/// The full Figure-2 grid: rows are beamspread values, columns are
/// oversubscription values; entries are served cell fractions.
[[nodiscard]] std::vector<std::vector<double>> served_fraction_grid(
    const demand::DemandProfile& profile, const SatelliteCapacityModel& model,
    const std::vector<double>& beamspreads,
    const std::vector<double>& oversubs);

}  // namespace leodivide::core
