#include "leodivide/core/backhaul.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "leodivide/orbit/density.hpp"
#include "leodivide/spectrum/efficiency.hpp"

namespace leodivide::core {

BackhaulReport analyze_backhaul(const SatelliteCapacityModel& model,
                                const BackhaulModel& backhaul) {
  if (backhaul.feeder_mhz <= 0.0 || backhaul.bps_per_hz <= 0.0 ||
      backhaul.feeder_links == 0) {
    throw std::invalid_argument("analyze_backhaul: non-positive model");
  }
  BackhaulReport r;
  // All user beams transmitting simultaneously at per-beam capacity.
  r.user_capacity_gbps =
      model.beam_capacity_gbps() *
      static_cast<double>(model.plan().spectrum().user_beams());
  r.feeder_capacity_gbps =
      spectrum::capacity_gbps(backhaul.feeder_mhz, backhaul.bps_per_hz) *
      static_cast<double>(backhaul.feeder_links);
  r.adequacy_ratio = r.feeder_capacity_gbps / r.user_capacity_gbps;
  r.bent_pipe_fraction = std::min(1.0, r.adequacy_ratio);
  return r;
}

double gateway_sites_needed(const BackhaulModel& backhaul,
                            double constellation_size, double inclination_deg,
                            double lat_deg, double region_area_km2) {
  if (constellation_size <= 0.0 || region_area_km2 <= 0.0) {
    throw std::invalid_argument("gateway_sites_needed: non-positive input");
  }
  if (backhaul.antennas_per_site == 0) {
    throw std::invalid_argument("gateway_sites_needed: zero antennas");
  }
  const double sats_over_region =
      orbit::surface_density_per_km2(constellation_size, lat_deg,
                                     inclination_deg) *
      region_area_km2;
  const double links = sats_over_region *
                       static_cast<double>(backhaul.feeder_links);
  return std::ceil(links / static_cast<double>(backhaul.antennas_per_site));
}

}  // namespace leodivide::core
