#pragma once
// The long-tail / diminishing-returns analysis (Figure 3, Finding F3):
// constellation size required as Starlink walks away from the hardest
// locations. Serving fewer locations only shrinks the constellation when a
// beam is freed from the binding cell — hence the stepped curve.

#include <cstdint>
#include <vector>

#include "leodivide/core/sizing.hpp"

namespace leodivide::core {

/// One step of the long-tail curve.
struct LongTailPoint {
  std::uint64_t locations_unserved = 0;  ///< x: locations left unserved
  double satellites = 0.0;               ///< y: constellation size required
  std::uint32_t beams_on_binding = 0;
  double binding_lat_deg = 0.0;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const LongTailPoint&, const LongTailPoint&) = default;
};

/// Builds the Figure-3 curve for one (beamspread, oversub_cap) pair.
///
/// Starting from the fullest service the cap allows (every cell truncated
/// at the cap), locations are shed greedily from whichever cell currently
/// binds the constellation size, one beam-threshold at a time, until no
/// cell needs more than one beam. Points are emitted whenever the required
/// constellation size changes; the first point is the full-service-at-cap
/// size (locations_unserved = the cap-unservable residue, 5103 in the
/// paper's data), and the last is the cheapest multi-beam deployment — the
/// demand-density model (P2) does not constrain sizes beyond it.
[[nodiscard]] std::vector<LongTailPoint> longtail_curve(
    const demand::DemandProfile& profile, const SizingModel& model,
    double beamspread, double oversub_cap);

/// Satellites required when exactly `unserved_budget` locations may be left
/// unserved: the smallest curve value whose locations_unserved does not
/// exceed the budget... i.e. the cheapest deployment meeting the budget.
/// Throws std::invalid_argument if the budget is below the cap-unservable
/// residue (no deployment can meet it).
[[nodiscard]] double satellites_for_unserved_budget(
    const std::vector<LongTailPoint>& curve, std::uint64_t unserved_budget);

}  // namespace leodivide::core
