#include "leodivide/core/uplink.hpp"

#include <cmath>
#include <stdexcept>

#include "leodivide/spectrum/efficiency.hpp"

namespace leodivide::core {

double location_uplink_demand_gbps() noexcept {
  return demand::kReliableUpMbps / 1000.0;
}

double UplinkModel::cell_capacity_gbps() const noexcept {
  return spectrum::capacity_gbps(ut_uplink_mhz, bps_per_hz);
}

UplinkReport analyze_uplink(const SatelliteCapacityModel& down,
                            const UplinkModel& up, std::uint32_t locations) {
  if (up.ut_uplink_mhz <= 0.0 || up.bps_per_hz <= 0.0) {
    throw std::invalid_argument("analyze_uplink: non-positive uplink model");
  }
  UplinkReport r;
  r.downlink_oversubscription = down.required_oversubscription(locations);
  const double ul_demand =
      static_cast<double>(locations) * location_uplink_demand_gbps();
  r.uplink_oversubscription = ul_demand / up.cell_capacity_gbps();
  r.uplink_to_downlink_ratio =
      // leolint:allow(float-eq): exact-zero guard before dividing
      r.downlink_oversubscription == 0.0
          ? 0.0
          : r.uplink_oversubscription / r.downlink_oversubscription;
  r.max_locations_at_20to1_uplink = static_cast<std::uint32_t>(std::floor(
      up.cell_capacity_gbps() * 20.0 / location_uplink_demand_gbps()));
  return r;
}

}  // namespace leodivide::core
