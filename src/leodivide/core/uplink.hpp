#pragma once
// EXTENSION (not in the paper): the uplink side of the capacity model.
//
// The paper analyses downlink only (100 Mbps per location against 3850 MHz
// of UT downlink spectrum). The federal definition also requires 20 Mbps
// uplink, and Starlink's UT uplink spectrum is far narrower (500 MHz of
// Ku) with a lower practical spectral efficiency (battery/EIRP-limited
// terminals). This module asks: at the paper's own peak cell, is uplink or
// downlink the binding constraint?

#include "leodivide/core/capacity_model.hpp"

namespace leodivide::core {

/// Per-location uplink demand [Gbps] under the federal definition.
[[nodiscard]] double location_uplink_demand_gbps() noexcept;

/// Uplink capacity model parameters.
struct UplinkModel {
  /// UT uplink spectrum [MHz] (14.0-14.5 GHz).
  double ut_uplink_mhz = 500.0;
  /// Practical uplink spectral efficiency [bps/Hz]. Lower than the
  /// downlink's 4.5: small phased arrays, power limits, shared MF-TDMA
  /// return channels. 2.5 is in line with published Starlink uplink
  /// measurement studies.
  double bps_per_hz = 2.5;

  /// Max uplink capacity receivable from one cell [Gbps].
  [[nodiscard]] double cell_capacity_gbps() const noexcept;
};

/// Uplink vs downlink at one cell.
struct UplinkReport {
  double downlink_oversubscription = 0.0;
  double uplink_oversubscription = 0.0;
  /// uplink_oversubscription / downlink_oversubscription: > 1 means the
  /// uplink is the tighter constraint.
  double uplink_to_downlink_ratio = 0.0;
  /// Locations servable at a 20:1 uplink oversubscription.
  std::uint32_t max_locations_at_20to1_uplink = 0;
};

/// Evaluates both directions at a cell with `locations` un(der)served
/// locations.
[[nodiscard]] UplinkReport analyze_uplink(const SatelliteCapacityModel& down,
                                          const UplinkModel& up,
                                          std::uint32_t locations);

}  // namespace leodivide::core
