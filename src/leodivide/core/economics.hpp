#pragma once
// EXTENSION (not in the paper): serving economics. The paper shows the
// *physical* diminishing returns of the long tail (Figure 3: thousands of
// extra satellites for the last locations) and the affordability gap
// (Figure 4). This module connects them in dollars: amortised constellation
// cost per served location, and the subscriber revenue the affordability
// analysis says is actually collectable.

#include <vector>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/core/longtail.hpp"

namespace leodivide::core {

/// Constellation cost assumptions.
struct CostModel {
  /// Build + launch cost per satellite [USD]. Public estimates for
  /// mass-produced Starlink satellites incl. rideshare launch run
  /// $0.5M-$1.5M; default mid-range.
  double cost_per_satellite_usd = 1'000'000.0;
  /// Satellite lifetime [years] (orbit decay / deorbit policy).
  double satellite_lifetime_years = 5.0;

  /// Amortised constellation cost [USD/year] for a fleet of `satellites`.
  [[nodiscard]] double annual_fleet_cost_usd(double satellites) const;
};

/// Economics of one operating point on the Figure-3 curve.
struct ServingEconomics {
  std::uint64_t locations_unserved = 0;
  double satellites = 0.0;
  double annual_cost_usd = 0.0;
  std::uint64_t locations_served = 0;
  /// Amortised constellation cost per served location [USD/year].
  double cost_per_location_year_usd = 0.0;
  /// Marginal cost per *additional* location relative to the previous
  /// (cheaper) operating point [USD/year]; 0 for the first point.
  double marginal_cost_per_location_year_usd = 0.0;
};

/// Evaluates the economics along a long-tail curve for a profile with
/// `total_locations`. Points are ordered from fewest-served (cheapest) to
/// most-served, so marginal costs describe the cost of reaching deeper
/// into the tail. Throws std::invalid_argument on an empty curve or zero
/// locations.
[[nodiscard]] std::vector<ServingEconomics> longtail_economics(
    const std::vector<LongTailPoint>& curve, std::uint64_t total_locations,
    const CostModel& cost);

/// Collectable annual revenue if every location that can afford the plan
/// at the 2% rule subscribes at the plan price (an optimistic take-rate
/// ceiling): affordable_locations * 12 * monthly price.
[[nodiscard]] double annual_revenue_ceiling_usd(
    const afford::AffordabilityAnalyzer& analyzer,
    const afford::ServicePlan& plan);

}  // namespace leodivide::core
