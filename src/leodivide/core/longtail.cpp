#include "leodivide/core/longtail.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace leodivide::core {

namespace {

// Largest location count servable with `beams` beams at `oversub`:1.
std::uint32_t locations_for_beams(const SatelliteCapacityModel& model,
                                  std::uint32_t beams, double oversub) {
  return static_cast<std::uint32_t>(
      std::floor(static_cast<double>(beams) * model.beam_capacity_gbps() *
                 oversub / demand::location_demand_gbps()));
}

struct HeapEntry {
  double satellites;
  std::size_t cell;
  std::uint32_t beams;  // beams assumed when this entry was pushed
  friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
    return a.satellites < b.satellites;  // max-heap on satellites
  }
};

}  // namespace

std::vector<LongTailPoint> longtail_curve(const demand::DemandProfile& profile,
                                          const SizingModel& model,
                                          double beamspread,
                                          double oversub_cap) {
  if (profile.cell_count() == 0) {
    throw std::invalid_argument("longtail_curve: empty profile");
  }
  const auto& cap = model.capacity;
  const std::uint32_t cap_locs = cap.max_locations_at(oversub_cap);
  const std::size_t n = profile.cell_count();

  // Per-cell K(phi) is loop-invariant; precompute it once.
  std::vector<double> units(n);
  for (std::size_t i = 0; i < n; ++i) {
    units[i] = coverage_units(model, profile.cells()[i].center.lat_deg);
  }
  auto sats_for = [&](std::size_t i, std::uint32_t beams) {
    return units[i] /
           cap.plan().cells_served_per_satellite(beamspread, beams);
  };

  // Initial state: every cell truncated at the cap; the residue can never
  // be served within the cap.
  std::vector<std::uint32_t> served(n);
  std::uint64_t unserved = 0;
  std::priority_queue<HeapEntry> heap;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = std::min(profile.cells()[i].underserved, cap_locs);
    served[i] = s;
    unserved += profile.cells()[i].underserved - s;
    const std::uint32_t beams = cap.beams_needed(s, oversub_cap);
    if (beams >= 2) heap.push({sats_for(i, beams), i, beams});
  }

  std::vector<LongTailPoint> curve;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    // Lazy deletion: skip entries that no longer reflect the cell's state.
    const std::uint32_t beams = cap.beams_needed(served[top.cell], oversub_cap);
    if (beams != top.beams || beams < 2) continue;

    LongTailPoint point;
    point.locations_unserved = unserved;
    point.satellites = top.satellites;
    point.beams_on_binding = beams;
    point.binding_lat_deg = profile.cells()[top.cell].center.lat_deg;
    // leolint:allow(float-eq): dedup of exactly-assigned curve points
    if (curve.empty() || point.satellites != curve.back().satellites) {
      curve.push_back(point);
    }
    // Shed locations from the binding cell until it frees one beam.
    const std::uint32_t target =
        locations_for_beams(cap, beams - 1, oversub_cap);
    unserved += served[top.cell] - target;
    served[top.cell] = target;
    if (beams - 1 >= 2) {
      heap.push({sats_for(top.cell, beams - 1), top.cell, beams - 1});
    }
  }

  // The curve ends when no cell needs more than one beam: beyond that the
  // paper's demand-density model no longer constrains the constellation
  // (baseline coverage, which the model deliberately excludes, would take
  // over). If the profile never had a multi-beam cell, emit the peak cell's
  // single-beam requirement so callers always get one point.
  if (curve.empty()) {
    const auto order = profile.cells_by_count_desc();
    const std::size_t peak = order.front();
    LongTailPoint point;
    point.locations_unserved = unserved;
    point.beams_on_binding = 1;
    point.binding_lat_deg = profile.cells()[peak].center.lat_deg;
    point.satellites = sats_for(peak, 1);
    curve.push_back(point);
  }

  // The curve was built by shedding (unserved increases); callers expect
  // ascending x.
  std::sort(curve.begin(), curve.end(),
            [](const LongTailPoint& a, const LongTailPoint& b) {
              return a.locations_unserved < b.locations_unserved;
            });
  return curve;
}

double satellites_for_unserved_budget(const std::vector<LongTailPoint>& curve,
                                      std::uint64_t unserved_budget) {
  if (curve.empty()) {
    throw std::invalid_argument("satellites_for_unserved_budget: empty curve");
  }
  if (unserved_budget < curve.front().locations_unserved) {
    throw std::invalid_argument(
        "satellites_for_unserved_budget: budget below the unservable residue");
  }
  // Curve is ascending in x and (weakly) descending in satellites: pick the
  // last point with x <= budget.
  double best = curve.front().satellites;
  for (const auto& p : curve) {
    if (p.locations_unserved <= unserved_budget) best = p.satellites;
  }
  return best;
}

}  // namespace leodivide::core
