#include "leodivide/core/served_fraction.hpp"

#include "leodivide/core/beamspread.hpp"

namespace leodivide::core {

double served_cell_fraction(const demand::DemandProfile& profile,
                            const SatelliteCapacityModel& model,
                            double beamspread, double oversub) {
  if (profile.cell_count() == 0) return 1.0;
  const std::uint32_t limit = max_locations_spread(model, beamspread, oversub);
  std::size_t served = 0;
  for (const auto& cell : profile.cells()) {
    if (cell.underserved <= limit) ++served;
  }
  return static_cast<double>(served) /
         static_cast<double>(profile.cell_count());
}

double served_location_fraction(const demand::DemandProfile& profile,
                                const SatelliteCapacityModel& model,
                                double beamspread, double oversub) {
  const std::uint64_t total = profile.total_locations();
  if (total == 0) return 1.0;
  const std::uint32_t limit = max_locations_spread(model, beamspread, oversub);
  std::uint64_t served = 0;
  for (const auto& cell : profile.cells()) {
    if (cell.underserved <= limit) served += cell.underserved;
  }
  return static_cast<double>(served) / static_cast<double>(total);
}

std::vector<std::vector<double>> served_fraction_grid(
    const demand::DemandProfile& profile, const SatelliteCapacityModel& model,
    const std::vector<double>& beamspreads,
    const std::vector<double>& oversubs) {
  std::vector<std::vector<double>> grid;
  grid.reserve(beamspreads.size());
  for (double s : beamspreads) {
    std::vector<double> row;
    row.reserve(oversubs.size());
    for (double o : oversubs) {
      row.push_back(served_cell_fraction(profile, model, s, o));
    }
    grid.push_back(std::move(row));
  }
  return grid;
}

}  // namespace leodivide::core
