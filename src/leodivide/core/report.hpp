#pragma once
// Human-readable rendering of an AnalysisResults — the library's "print the
// paper" entry point, shared by examples and benches.

#include <string>

#include "leodivide/core/scenario.hpp"

namespace leodivide::core {

/// Renders the Table 1 capacity model as aligned text.
[[nodiscard]] std::string render_table1(const Table1Summary& t);

/// Renders the F1 oversubscription findings.
[[nodiscard]] std::string render_f1(const OversubscriptionReport& r);

/// Renders the Table 2 constellation sizes.
[[nodiscard]] std::string render_table2(const std::vector<Table2Row>& rows);

/// Renders the Figure 2 served-fraction grid.
[[nodiscard]] std::string render_fig2(
    const std::vector<double>& beamspreads, const std::vector<double>& oversubs,
    const std::vector<std::vector<double>>& grid);

/// Renders a compact view of the Figure 3 curves (first/last points and
/// step counts per curve).
[[nodiscard]] std::string render_fig3(const std::vector<Fig3Curve>& curves);

/// Renders the Figure 4 affordability table.
[[nodiscard]] std::string render_fig4(
    const std::vector<afford::PlanAffordability>& plans);

/// Renders the complete analysis.
[[nodiscard]] std::string render_report(const AnalysisResults& results);

}  // namespace leodivide::core
