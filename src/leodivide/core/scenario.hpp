#pragma once
// End-to-end analysis scenarios: one call that reproduces every table and
// figure of the paper against a demand profile. Examples and benches build
// on this; tests pin its outputs to the published numbers.

#include <vector>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/core/longtail.hpp"
#include "leodivide/core/oversubscription.hpp"
#include "leodivide/core/served_fraction.hpp"
#include "leodivide/core/sizing.hpp"

namespace leodivide::core {

/// Sweep parameters; defaults mirror the paper exactly.
struct AnalysisConfig {
  /// Table 2 beamspread factors.
  std::vector<double> table2_beamspreads{1, 2, 5, 10, 15};

  /// Figure 2 axes.
  std::vector<double> fig2_beamspreads{2, 4, 6, 8, 10, 12, 14};
  std::vector<double> fig2_oversubs{5, 10, 15, 20, 25, 30};

  /// Figure 3 curves: (beamspread, oversubscription cap).
  std::vector<std::pair<double, double>> fig3_curves{
      {1, 20}, {2, 20}, {5, 20}, {5, 15}, {10, 20}, {15, 20}};

  /// F1 / Table 2 oversubscription cap.
  double oversub_cap = kFccOversubscriptionCap;
};

/// One Table 2 row.
struct Table2Row {
  double beamspread = 0.0;
  double satellites_full_service = 0.0;
  double satellites_capped = 0.0;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const Table2Row&, const Table2Row&) = default;
};

/// One Figure 3 curve.
struct Fig3Curve {
  double beamspread = 0.0;
  double oversub = 0.0;
  std::vector<LongTailPoint> points;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const Fig3Curve&, const Fig3Curve&) = default;
};

/// Everything the paper's evaluation reports.
struct AnalysisResults {
  Table1Summary table1;
  OversubscriptionReport f1;
  std::vector<Table2Row> table2;
  std::vector<double> fig2_beamspreads;
  std::vector<double> fig2_oversubs;
  std::vector<std::vector<double>> fig2_grid;
  std::vector<Fig3Curve> fig3;
  std::vector<afford::PlanAffordability> fig4;
  double fig4_lifeline_threshold_income = 0.0;  ///< $66,450
  double fig4_starlink_threshold_income = 0.0;  ///< $72,000

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const AnalysisResults&,
                         const AnalysisResults&) = default;
};

/// Runs the complete analysis.
[[nodiscard]] AnalysisResults run_full_analysis(
    const demand::DemandProfile& profile, const SizingModel& model = {},
    const AnalysisConfig& config = {});

}  // namespace leodivide::core
