#pragma once
// Minimal JSON writer (objects, arrays, numbers, strings, bools). Bench
// binaries export machine-readable results next to their console tables so
// downstream plotting scripts can regenerate the paper's figures.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace leodivide::io {

/// Escapes a string for inclusion in JSON (quotes, backslashes, control
/// characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// A streaming JSON writer with explicit begin/end calls. The writer tracks
/// nesting and comma placement; misuse (ending a container that was never
/// begun) throws std::logic_error.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = true);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void begin_object(std::string_view key);
  void end_object();

  void begin_array();
  void begin_array(std::string_view key);
  void end_array();

  void value(std::string_view key, std::string_view v);
  void value(std::string_view key, double v);
  void value(std::string_view key, long long v);
  void value(std::string_view key, bool v);
  /// Disambiguation: a string literal must not decay to the bool overload.
  void value(std::string_view key, const char* v) {
    value(key, std::string_view(v));
  }

  /// Array element values.
  void element(std::string_view v);
  void element(double v);
  void element(long long v);
  void element(const char* v) { element(std::string_view(v)); }

 private:
  enum class Frame { kObject, kArray };
  void comma_and_indent();
  void key_prefix(std::string_view key);
  std::ostream& out_;
  bool pretty_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
};

}  // namespace leodivide::io
