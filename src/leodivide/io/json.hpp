#pragma once
// Minimal JSON writer (objects, arrays, numbers, strings, bools) and a
// strict recursive-descent parser. Bench binaries export machine-readable
// results next to their console tables so downstream plotting scripts can
// regenerate the paper's figures; the parser lets tests and tools validate
// those lines and the obs/ trace files without external dependencies.

#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace leodivide::io {

/// Escapes a string for inclusion in JSON (quotes, backslashes, control
/// characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// A streaming JSON writer with explicit begin/end calls. The writer tracks
/// nesting and comma placement; misuse (ending a container that was never
/// begun) throws std::logic_error. A stream that enters a failed state
/// (disk full, closed pipe) raises std::runtime_error from the write call
/// that observed it rather than silently truncating the document.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = true);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void begin_object(std::string_view key);
  void end_object();

  void begin_array();
  void begin_array(std::string_view key);
  void end_array();

  void value(std::string_view key, std::string_view v);
  void value(std::string_view key, double v);
  void value(std::string_view key, long long v);
  void value(std::string_view key, bool v);
  /// Disambiguation: a string literal must not decay to the bool overload.
  void value(std::string_view key, const char* v) {
    value(key, std::string_view(v));
  }

  /// Array element values.
  void element(std::string_view v);
  void element(double v);
  void element(long long v);
  void element(const char* v) { element(std::string_view(v)); }

 private:
  enum class Frame { kObject, kArray };
  void comma_and_indent();
  void key_prefix(std::string_view key);
  void check_stream() const;
  std::ostream& out_;
  bool pretty_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
};

/// Thrown by json_parse on malformed input, with a byte offset in what().
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed JSON document node. Numbers are held as double (adequate for
/// every value the library emits); object member order is preserved.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> items;                            ///< arrays
  std::vector<std::pair<std::string, JsonValue>> members;  ///< objects

  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return type == Type::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return type == Type::kNumber;
  }

  /// First member with `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// find() that throws JsonParseError when the member is missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws JsonParseError on malformed input.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace leodivide::io
