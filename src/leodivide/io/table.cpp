#include "leodivide/io/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace leodivide::io {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width != header width");
  }
  rows_.push_back(std::move(row));
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

std::string TextTable::render() const {
  const std::size_t cols =
      header_.empty() ? (rows_.empty() ? 0 : rows_.front().size())
                      : header_.size();
  if (cols == 0) return "";
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols && c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto align_of = [&](std::size_t c) {
    if (c < alignment_.size()) return alignment_[c];
    return c == 0 ? Align::kLeft : Align::kRight;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      const std::size_t pad = width[c] - cell.size();
      if (c > 0) out << "  ";
      if (align_of(c) == Align::kRight) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_count(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? static_cast<unsigned long long>(-(v + 1)) + 1
                             : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string fmt_pct(double ratio, int digits) {
  return fmt(ratio * 100.0, digits) + "%";
}

}  // namespace leodivide::io
