#pragma once
// RFC-4180 CSV reading and writing. Datasets (locations, cells, counties)
// persist as CSV so users can swap in real FCC Broadband Data Collection or
// Census extracts.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace leodivide::io {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line (no embedded newlines). Handles quoted fields
/// with doubled-quote escapes. Throws std::runtime_error on malformed
/// quoting.
[[nodiscard]] CsvRow parse_csv_line(std::string_view line);

/// Streaming CSV reader over an istream. Supports quoted fields containing
/// commas, escaped quotes, and embedded newlines (LF and CRLF are both
/// preserved exactly inside quoted fields); skips blank lines. CRLF record
/// terminators are accepted and normalised away.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in);

  /// Reads the next record into `row`; returns false at end of input.
  bool next(CsvRow& row);

  /// Number of records returned so far.
  [[nodiscard]] std::size_t records_read() const noexcept { return count_; }

 private:
  std::istream& in_;
  std::size_t count_ = 0;
};

/// CSV writer with minimal quoting (quotes only when necessary). A stream
/// that enters a failed state (disk full, closed pipe) raises
/// std::runtime_error from write_row rather than silently truncating the
/// output.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out);

  void write_row(const CsvRow& row);
  void write_row(std::initializer_list<std::string_view> fields);

  [[nodiscard]] std::size_t records_written() const noexcept { return count_; }

 private:
  void write_field(std::string_view field, bool first);
  void check_stream() const;
  std::ostream& out_;
  std::size_t count_ = 0;
};

/// Escapes one field per RFC 4180 (wraps in quotes iff it contains a comma,
/// quote, CR or LF).
[[nodiscard]] std::string csv_escape(std::string_view field);

}  // namespace leodivide::io
