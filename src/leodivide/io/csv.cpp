#include "leodivide/io/csv.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace leodivide::io {

CsvRow parse_csv_line(std::string_view line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      if (!field.empty()) {
        throw std::runtime_error("CSV: quote inside unquoted field");
      }
      in_quotes = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
    ++i;
  }
  if (in_quotes) throw std::runtime_error("CSV: unterminated quoted field");
  row.push_back(std::move(field));
  return row;
}

CsvReader::CsvReader(std::istream& in) : in_(in) {}

namespace {

// Advances the RFC-4180 quote state across one physical-line chunk. A
// doubled quote inside a quoted field is an escape and leaves the state
// unchanged; any other quote toggles it. Escape pairs are adjacent bytes,
// so they can never straddle a chunk boundary (the boundary is a newline
// in the field's content) — scanning chunk-by-chunk with carried state is
// therefore exact, unlike total-quote-parity recounts, and costs O(chunk)
// per chunk instead of O(record) per re-join.
bool scan_quote_state(std::string_view chunk, bool in_quotes) {
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    if (chunk[i] != '"') continue;
    if (in_quotes && i + 1 < chunk.size() && chunk[i + 1] == '"') {
      ++i;  // escaped "" pair: stay inside the quoted field
    } else {
      in_quotes = !in_quotes;
    }
  }
  return in_quotes;
}

}  // namespace

bool CsvReader::next(CsvRow& row) {
  std::string line;
  while (std::getline(in_, line)) {
    // A trailing CR is the first half of a CRLF terminator. Strip it for
    // the record boundary, but remember it: if this newline turns out to be
    // *inside* a quoted field, the CRLF belongs to the field's content and
    // is restored verbatim on re-join.
    bool crlf = !line.empty() && line.back() == '\r';
    if (crlf) line.pop_back();
    if (line.empty()) continue;
    // Re-join physical lines while a quoted field spans the newline.
    bool in_quotes = scan_quote_state(line, false);
    while (in_quotes) {
      std::string more;
      if (!std::getline(in_, more)) {
        throw std::runtime_error("CSV: unterminated quoted record at EOF");
      }
      const bool more_crlf = !more.empty() && more.back() == '\r';
      if (more_crlf) more.pop_back();
      line.append(crlf ? "\r\n" : "\n");
      in_quotes = scan_quote_state(more, in_quotes);
      line.append(more);
      crlf = more_crlf;
    }
    row = parse_csv_line(line);
    ++count_;
    return true;
  }
  return false;
}

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_field(std::string_view field, bool first) {
  if (!first) out_ << ',';
  out_ << csv_escape(field);
}

void CsvWriter::check_stream() const {
  if (!out_) {
    throw std::runtime_error("CsvWriter: stream write failed after record " +
                             std::to_string(count_));
  }
}

void CsvWriter::write_row(const CsvRow& row) {
  bool first = true;
  for (const auto& f : row) {
    write_field(f, first);
    first = false;
  }
  out_ << '\n';
  check_stream();
  ++count_;
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (const auto& f : fields) {
    write_field(f, first);
    first = false;
  }
  out_ << '\n';
  check_stream();
  ++count_;
}

}  // namespace leodivide::io
