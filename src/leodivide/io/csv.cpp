#include "leodivide/io/csv.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace leodivide::io {

CsvRow parse_csv_line(std::string_view line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      if (!field.empty()) {
        throw std::runtime_error("CSV: quote inside unquoted field");
      }
      in_quotes = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
    ++i;
  }
  if (in_quotes) throw std::runtime_error("CSV: unterminated quoted field");
  row.push_back(std::move(field));
  return row;
}

CsvReader::CsvReader(std::istream& in) : in_(in) {}

bool CsvReader::next(CsvRow& row) {
  std::string line;
  while (std::getline(in_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    // Re-join lines while a quoted field spans newlines.
    while (true) {
      std::size_t quotes = 0;
      for (char c : line) {
        if (c == '"') ++quotes;
      }
      if (quotes % 2 == 0) break;
      std::string more;
      if (!std::getline(in_, more)) {
        throw std::runtime_error("CSV: unterminated quoted record at EOF");
      }
      if (!more.empty() && more.back() == '\r') more.pop_back();
      line.push_back('\n');
      line.append(more);
    }
    row = parse_csv_line(line);
    ++count_;
    return true;
  }
  return false;
}

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_field(std::string_view field, bool first) {
  if (!first) out_ << ',';
  out_ << csv_escape(field);
}

void CsvWriter::write_row(const CsvRow& row) {
  bool first = true;
  for (const auto& f : row) {
    write_field(f, first);
    first = false;
  }
  out_ << '\n';
  ++count_;
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (const auto& f : fields) {
    write_field(f, first);
    first = false;
  }
  out_ << '\n';
  ++count_;
}

}  // namespace leodivide::io
