#pragma once
// Whole-file reading and atomic whole-file writing. Shared by tools
// (leolint, ldsnap), the snapshot store and tests that need file contents
// as a single string without hand-rolled stream loops.

#include <string>
#include <string_view>

namespace leodivide::io {

/// Reads the entire file at `path` into a string (binary mode, so CRLF and
/// embedded NUL bytes are preserved exactly). Throws std::runtime_error
/// with the path in the message when the file cannot be opened or read.
[[nodiscard]] std::string read_text_file(const std::string& path);

/// Writes `contents` to `path` atomically: the bytes land in a temporary
/// sibling file which is renamed over `path` only after a successful write
/// and close, so readers never observe a half-written file and a crashed
/// writer never corrupts an existing one. Binary mode — bytes are written
/// exactly. Throws std::runtime_error (with the path) on any failure; the
/// temporary is removed before throwing.
void write_text_file(const std::string& path, std::string_view contents);

}  // namespace leodivide::io
