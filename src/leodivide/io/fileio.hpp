#pragma once
// Whole-file reading. Shared by tools (leolint) and tests that need file
// contents as a single string without hand-rolled stream loops.

#include <string>

namespace leodivide::io {

/// Reads the entire file at `path` into a string (binary mode, so CRLF and
/// embedded NUL bytes are preserved exactly). Throws std::runtime_error
/// with the path in the message when the file cannot be opened or read.
[[nodiscard]] std::string read_text_file(const std::string& path);

}  // namespace leodivide::io
