#pragma once
// Aligned console tables. Every bench binary prints its paper-table /
// paper-figure reproduction through this writer so output is uniform.

#include <iosfwd>
#include <string>
#include <vector>

namespace leodivide::io {

/// Column alignment.
enum class Align { kLeft, kRight };

/// Builds a fixed-width text table: add a header, then rows; render() pads
/// every column to its widest cell.
class TextTable {
 public:
  /// Sets the header row (also fixes the column count).
  void set_header(std::vector<std::string> header);

  /// Appends a row; throws std::invalid_argument if the column count does
  /// not match the header.
  void add_row(std::vector<std::string> row);

  /// Sets per-column alignment (defaults to left for the first column and
  /// right for the rest, the common numeric-table layout).
  void set_alignment(std::vector<Align> alignment);

  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> alignment_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fmt(double v, int digits = 2);

/// Formats an integer with thousands separators ("79,287").
[[nodiscard]] std::string fmt_count(long long v);

/// Formats a ratio as a percentage string with `digits` decimals.
[[nodiscard]] std::string fmt_pct(double ratio, int digits = 2);

}  // namespace leodivide::io
