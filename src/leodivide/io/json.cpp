#include "leodivide/io/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace leodivide::io {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty) {}

JsonWriter::~JsonWriter() = default;

void JsonWriter::comma_and_indent() {
  if (!stack_.empty()) {
    if (has_items_.back()) out_ << ',';
    has_items_.back() = true;
  }
  if (pretty_ && !stack_.empty()) {
    out_ << '\n' << std::string(2 * stack_.size(), ' ');
  }
}

void JsonWriter::key_prefix(std::string_view key) {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  comma_and_indent();
  out_ << '"' << json_escape(key) << (pretty_ ? "\": " : "\":");
}

void JsonWriter::begin_object() {
  if (!stack_.empty() && stack_.back() == Frame::kObject) {
    throw std::logic_error("JsonWriter: keyless object inside object");
  }
  comma_and_indent();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
}

void JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: end_object without begin_object");
  }
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (pretty_ && had) out_ << '\n' << std::string(2 * stack_.size(), ' ');
  out_ << '}';
}

void JsonWriter::begin_array() {
  if (!stack_.empty() && stack_.back() == Frame::kObject) {
    throw std::logic_error("JsonWriter: keyless array inside object");
  }
  comma_and_indent();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
}

void JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: end_array without begin_array");
  }
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (pretty_ && had) out_ << '\n' << std::string(2 * stack_.size(), ' ');
  out_ << ']';
}

namespace {
std::string number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}
}  // namespace

void JsonWriter::value(std::string_view key, std::string_view v) {
  key_prefix(key);
  out_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(std::string_view key, double v) {
  key_prefix(key);
  out_ << number_to_string(v);
}

void JsonWriter::value(std::string_view key, long long v) {
  key_prefix(key);
  out_ << v;
}

void JsonWriter::value(std::string_view key, bool v) {
  key_prefix(key);
  out_ << (v ? "true" : "false");
}

void JsonWriter::element(std::string_view v) {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: element outside array");
  }
  comma_and_indent();
  out_ << '"' << json_escape(v) << '"';
}

void JsonWriter::element(double v) {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: element outside array");
  }
  comma_and_indent();
  out_ << number_to_string(v);
}

void JsonWriter::element(long long v) {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: element outside array");
  }
  comma_and_indent();
  out_ << v;
}

}  // namespace leodivide::io
