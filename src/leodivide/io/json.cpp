#include "leodivide/io/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace leodivide::io {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty) {}

JsonWriter::~JsonWriter() = default;

void JsonWriter::check_stream() const {
  if (!out_) {
    throw std::runtime_error("JsonWriter: stream write failed");
  }
}

void JsonWriter::comma_and_indent() {
  if (!stack_.empty()) {
    if (has_items_.back()) out_ << ',';
    has_items_.back() = true;
  }
  if (pretty_ && !stack_.empty()) {
    out_ << '\n' << std::string(2 * stack_.size(), ' ');
  }
}

void JsonWriter::key_prefix(std::string_view key) {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  comma_and_indent();
  out_ << '"' << json_escape(key) << (pretty_ ? "\": " : "\":");
}

void JsonWriter::begin_object() {
  if (!stack_.empty() && stack_.back() == Frame::kObject) {
    throw std::logic_error("JsonWriter: keyless object inside object");
  }
  comma_and_indent();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  check_stream();
}

void JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  check_stream();
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: end_object without begin_object");
  }
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (pretty_ && had) out_ << '\n' << std::string(2 * stack_.size(), ' ');
  out_ << '}';
  check_stream();
}

void JsonWriter::begin_array() {
  if (!stack_.empty() && stack_.back() == Frame::kObject) {
    throw std::logic_error("JsonWriter: keyless array inside object");
  }
  comma_and_indent();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  check_stream();
}

void JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  check_stream();
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: end_array without begin_array");
  }
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (pretty_ && had) out_ << '\n' << std::string(2 * stack_.size(), ' ');
  out_ << ']';
  check_stream();
}

namespace {
std::string number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}
}  // namespace

void JsonWriter::value(std::string_view key, std::string_view v) {
  key_prefix(key);
  out_ << '"' << json_escape(v) << '"';
  check_stream();
}

void JsonWriter::value(std::string_view key, double v) {
  key_prefix(key);
  out_ << number_to_string(v);
  check_stream();
}

void JsonWriter::value(std::string_view key, long long v) {
  key_prefix(key);
  out_ << v;
  check_stream();
}

void JsonWriter::value(std::string_view key, bool v) {
  key_prefix(key);
  out_ << (v ? "true" : "false");
  check_stream();
}

void JsonWriter::element(std::string_view v) {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: element outside array");
  }
  comma_and_indent();
  out_ << '"' << json_escape(v) << '"';
  check_stream();
}

void JsonWriter::element(double v) {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: element outside array");
  }
  comma_and_indent();
  out_ << number_to_string(v);
  check_stream();
}

void JsonWriter::element(long long v) {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: element outside array");
  }
  comma_and_indent();
  out_ << v;
  check_stream();
}

// ------------------------------------------------------------------ parser --

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw JsonParseError("JsonValue: missing member \"" + std::string(key) +
                         "\"");
  }
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("json_parse: " + what + " at offset " +
                         std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    JsonValue v;
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.type = JsonValue::Type::kString;
        v.str_v = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.type = JsonValue::Type::kBool;
        v.bool_v = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.type = JsonValue::Type::kBool;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(parse_hex4(), out); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(unsigned code, std::string& out) {
    // BMP only — surrogate pairs decode as two replacement-free code units,
    // which is sufficient for validation (the library never emits them).
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !is_digit(text_[pos_])) fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;  // leading zeros are invalid JSON
    } else {
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
        fail("invalid number");
      }
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
        fail("invalid number");
      }
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.num_v = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::out_of_range&) {
      // e.g. "1e999" — syntactically valid JSON whose magnitude exceeds
      // double range. Surface it as a parse error, not a foreign
      // exception type.
      pos_ = start;
      fail("number out of range");
    }
    return v;
  }

  static bool is_digit(char c) noexcept { return c >= '0' && c <= '9'; }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace leodivide::io
