#include "leodivide/io/fileio.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace leodivide::io {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_text_file: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("read_text_file: read error on '" + path + "'");
  }
  return std::move(buf).str();
}

void write_text_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_text_file: cannot open '" + tmp + "'");
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("write_text_file: write error on '" + tmp +
                               "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_text_file: cannot rename '" + tmp +
                             "' to '" + path + "'");
  }
}

}  // namespace leodivide::io
