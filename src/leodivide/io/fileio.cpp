#include "leodivide/io/fileio.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace leodivide::io {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_text_file: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("read_text_file: read error on '" + path + "'");
  }
  return std::move(buf).str();
}

}  // namespace leodivide::io
