#pragma once
// Ground-to-satellite visibility: elevation angles, line-of-sight checks
// and "how many satellites can this terminal see" queries.

#include <cstddef>
#include <vector>

#include "leodivide/orbit/propagate.hpp"

namespace leodivide::orbit {

/// Elevation angle [deg] of a satellite at ECEF position `sat_ecef_km` as
/// seen from a ground point (spherical Earth). Negative below the horizon.
[[nodiscard]] double elevation_deg(const geo::GeoPoint& ground,
                                   const geo::Vec3& sat_ecef_km);

/// Slant range [km] from ground point to satellite.
[[nodiscard]] double slant_range_km(const geo::GeoPoint& ground,
                                    const geo::Vec3& sat_ecef_km);

/// True if the satellite is at or above `min_elevation_deg`.
[[nodiscard]] bool is_visible(const geo::GeoPoint& ground,
                              const geo::Vec3& sat_ecef_km,
                              double min_elevation_deg);

/// Indices of all satellites in `states` visible from `ground`.
[[nodiscard]] std::vector<std::size_t> visible_satellites(
    const geo::GeoPoint& ground, const std::vector<SatState>& states,
    double min_elevation_deg);

/// Number of visible satellites (cheaper than materialising indices).
[[nodiscard]] std::size_t count_visible(const geo::GeoPoint& ground,
                                        const std::vector<SatState>& states,
                                        double min_elevation_deg);

}  // namespace leodivide::orbit
