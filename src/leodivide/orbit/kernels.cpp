#include "leodivide/orbit/kernels.hpp"

#include <bit>
#include <cstring>

#include "leodivide/simd/lanes.hpp"

#if defined(__SSE2__)
#include <immintrin.h>
#endif

// This is the only TU that instantiates SIMD code, and everything
// width-dependent stays in the anonymous namespace: the build may give this
// file wider target flags (see LEODIVIDE_KERNEL_NATIVE) without risking an
// ODR merge of flag-dependent inline code from other TUs. The `_scalar`
// twins live in kernels_scalar.cpp, compiled with auto-vectorization off,
// so they remain a genuine element-at-a-time reference.

namespace leodivide::orbit {

namespace {

constexpr std::size_t kW = simd::kPreferredLanes;

#ifdef LEODIVIDE_SIMD_VECTOR_EXT
/// Bitmask of the W comparison lanes: bit j is set iff lane j is all-ones.
/// Lane-by-lane extraction from a wide register compiles to a chain of
/// vpextrq + shifts that costs more than the dot product itself, so on x86
/// this is one movemask instruction (it reads the lanes' sign bits, which
/// a comparison result sets exactly); elsewhere the portable per-lane loop
/// remains.
template <std::size_t W>
unsigned mask_bits(typename simd::DoubleLanes<W>::M m) {
#if defined(__AVX__)
  if constexpr (W == 4) {
    return static_cast<unsigned>(
        _mm256_movemask_pd(std::bit_cast<__m256d>(m)));
  }
#endif
#if defined(__SSE2__)
  if constexpr (W == 2) {
    return static_cast<unsigned>(
        _mm_movemask_pd(std::bit_cast<__m128d>(m)));
  }
#endif
  unsigned bits = 0;
  for (std::size_t j = 0; j < W; ++j) {
    bits |= (m[j] != 0 ? 1u : 0u) << j;
  }
  return bits;
}

/// 0/1-byte expansion of every W-bit mask value, so visible_mask can turn
/// a lane bitmask into its W output bytes with one table load + one store.
template <std::size_t W>
struct MaskBytesTable {
  unsigned char b[std::size_t(1) << W][W];
  constexpr MaskBytesTable() : b() {
    for (std::size_t m = 0; m < (std::size_t(1) << W); ++m) {
      for (std::size_t j = 0; j < W; ++j) {
        b[m][j] = (m >> j) & 1 ? 1 : 0;
      }
    }
  }
};
template <std::size_t W>
constexpr MaskBytesTable<W> kMaskBytes{};
#endif

// Width-generic kernel bodies. They are templates so the scalar
// (W == 1) instantiation never touches the vector branches — `if constexpr`
// only discards statements inside a template.

template <std::size_t W>
std::size_t filter_visible_impl(double cx, double cy, double cz,
                                const double* ux, const double* uy,
                                const double* uz,
                                const std::uint32_t* candidates,
                                std::size_t n, double cos_psi,
                                std::uint32_t* out) {
  std::size_t kept = 0;
  std::size_t i = 0;
  if constexpr (W > 1) {
    using L = simd::DoubleLanes<W>;
    using V = typename L::V;
    const V vcx = L::splat(cx);
    const V vcy = L::splat(cy);
    const V vcz = L::splat(cz);
    const V vthresh = L::splat(cos_psi);
    double gx[W];
    double gy[W];
    double gz[W];
    for (; i + W <= n; i += W) {
      // Scalar gathers into lane temps (candidate indices are arbitrary),
      // then one vector dot + compare per W candidates.
      for (std::size_t j = 0; j < W; ++j) {
        const std::uint32_t si = candidates[i + j];
        gx[j] = ux[si];
        gy[j] = uy[si];
        gz[j] = uz[si];
      }
      const V dot = vcx * L::load(gx) + vcy * L::load(gy) + vcz * L::load(gz);
      unsigned bits = mask_bits<W>(dot >= vthresh);
      // Fixed lane order: compact the lowest set bit first, so the survivor
      // sequence is exactly the scalar ascending scan.
      while (bits != 0) {
        const unsigned j = static_cast<unsigned>(__builtin_ctz(bits));
        out[kept++] = candidates[i + j];
        bits &= bits - 1;
      }
    }
  }
  for (; i < n; ++i) {
    const std::uint32_t si = candidates[i];
    if (cx * ux[si] + cy * uy[si] + cz * uz[si] >= cos_psi) {
      out[kept++] = candidates[i];
    }
  }
  return kept;
}

template <std::size_t W>
void visible_mask_impl(double cx, double cy, double cz, const double* ux,
                       const double* uy, const double* uz, std::size_t n,
                       double cos_psi, std::uint8_t* out_mask) {
  std::size_t i = 0;
  if constexpr (W > 1) {
    using L = simd::DoubleLanes<W>;
    using V = typename L::V;
    const V vcx = L::splat(cx);
    const V vcy = L::splat(cy);
    const V vcz = L::splat(cz);
    const V vthresh = L::splat(cos_psi);
    for (; i + W <= n; i += W) {
      const V dot = vcx * L::load(ux + i) + vcy * L::load(uy + i) +
                    vcz * L::load(uz + i);
      // One table load + one W-byte store of the 0/1 mask per W satellites.
      const unsigned bits = mask_bits<W>(dot >= vthresh);
      std::memcpy(out_mask + i, kMaskBytes<W>.b[bits], W);
    }
  }
  for (; i < n; ++i) {
    out_mask[i] = cx * ux[i] + cy * uy[i] + cz * uz[i] >= cos_psi ? 1 : 0;
  }
}

template <std::size_t W>
void rotate_about_z_impl(const double* x, const double* y, double c, double s,
                         std::size_t n, double* out_x, double* out_y) {
  std::size_t i = 0;
  if constexpr (W > 1) {
    using L = simd::DoubleLanes<W>;
    using V = typename L::V;
    const V vc = L::splat(c);
    const V vs = L::splat(s);
    for (; i + W <= n; i += W) {
      // Both inputs loaded before either store, so in-place rotation
      // (out_x == x, out_y == y) stays well-defined.
      const V vx = L::load(x + i);
      const V vy = L::load(y + i);
      const V ox = vx * vc + vy * vs;
      const V oy = -vx * vs + vy * vc;
      L::store(out_x + i, ox);
      L::store(out_y + i, oy);
    }
  }
  for (; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    out_x[i] = xi * c + yi * s;
    out_y[i] = -xi * s + yi * c;
  }
}

}  // namespace

std::size_t kernel_lanes() noexcept { return kW; }

const char* kernel_backend() noexcept {
  if constexpr (kW == 8) {
    return "vec8";
  } else if constexpr (kW == 4) {
    return "vec4";
  } else if constexpr (kW == 2) {
    return "vec2";
  } else {
    return "scalar";
  }
}

std::size_t filter_visible(double cx, double cy, double cz, const double* ux,
                           const double* uy, const double* uz,
                           const std::uint32_t* candidates, std::size_t n,
                           double cos_psi, std::uint32_t* out) {
  return filter_visible_impl<kW>(cx, cy, cz, ux, uy, uz, candidates, n,
                                 cos_psi, out);
}

void visible_mask(double cx, double cy, double cz, const double* ux,
                  const double* uy, const double* uz, std::size_t n,
                  double cos_psi, std::uint8_t* out_mask) {
  visible_mask_impl<kW>(cx, cy, cz, ux, uy, uz, n, cos_psi, out_mask);
}

void rotate_about_z(const double* x, const double* y, double c, double s,
                    std::size_t n, double* out_x, double* out_y) {
  rotate_about_z_impl<kW>(x, y, c, s, n, out_x, out_y);
}

}  // namespace leodivide::orbit
