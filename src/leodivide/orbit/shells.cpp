#include "leodivide/orbit/shells.hpp"

#include <algorithm>
#include <stdexcept>

namespace leodivide::orbit {

MultiShellConstellation::MultiShellConstellation(
    std::vector<WalkerShell> shells)
    : shells_(std::move(shells)) {}

void MultiShellConstellation::add_shell(const WalkerShell& shell) {
  shells_.push_back(shell);
}

std::uint32_t MultiShellConstellation::total_sats() const noexcept {
  std::uint32_t n = 0;
  for (const auto& s : shells_) n += s.total_sats();
  return n;
}

double MultiShellConstellation::surface_density_per_km2(double lat_deg) const {
  double rho = 0.0;
  for (const auto& s : shells_) {
    rho += orbit::surface_density_per_km2(s.total_sats(), lat_deg,
                                          s.inclination_deg);
  }
  return rho;
}

double MultiShellConstellation::max_covered_latitude_deg() const {
  double best = 0.0;
  for (const auto& s : shells_) {
    best = std::max(best, std::abs(s.inclination_deg) <= 90.0
                              ? std::abs(s.inclination_deg)
                              : 180.0 - std::abs(s.inclination_deg));
  }
  return best;
}

std::vector<CircularOrbit> MultiShellConstellation::all_orbits() const {
  std::vector<CircularOrbit> out;
  for (const auto& s : shells_) {
    const auto orbits = make_constellation(s);
    out.insert(out.end(), orbits.begin(), orbits.end());
  }
  return out;
}

double MultiShellConstellation::size_for_density(
    double required_density_per_km2, double lat_deg) const {
  if (required_density_per_km2 <= 0.0) {
    throw std::invalid_argument("size_for_density: density must be > 0");
  }
  if (shells_.empty()) {
    throw std::invalid_argument("size_for_density: no shells");
  }
  const double rho = surface_density_per_km2(lat_deg);
  if (rho <= 0.0) {
    throw std::invalid_argument(
        "size_for_density: latitude outside every shell's coverage band");
  }
  const double factor = required_density_per_km2 / rho;
  return factor * static_cast<double>(total_sats());
}

MultiShellConstellation starlink_gen1() {
  return MultiShellConstellation{{
      {53.0, 550.0, 72, 22, 1},   // shell 1: 1584
      {53.2, 540.0, 72, 22, 1},   // shell 2: 1584
      {70.0, 570.0, 36, 20, 1},   // shell 3: 720
      {97.6, 560.0, 6, 58, 1},    // shell 4: 348 (polar)
      {97.6, 560.1, 4, 43, 1},    // shell 5: 172 (polar)
  }};
}

}  // namespace leodivide::orbit
