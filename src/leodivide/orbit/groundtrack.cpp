#include "leodivide/orbit/groundtrack.hpp"

#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

std::vector<geo::GeoPoint> ground_track(const CircularOrbit& orbit,
                                        double duration_s, double step_s) {
  if (step_s <= 0.0 || duration_s < 0.0) {
    throw std::invalid_argument("ground_track: bad duration/step");
  }
  std::vector<geo::GeoPoint> out;
  out.reserve(static_cast<std::size_t>(duration_s / step_s) + 1);
  for (double t = 0.0; t <= duration_s + 1e-9; t += step_s) {
    out.push_back(subsatellite_point(orbit, t));
  }
  return out;
}

double nodal_regression_per_orbit_deg(const CircularOrbit& orbit) {
  return geo::rad2deg(geo::kEarthRotationRadPerSec * orbit.period_s());
}

}  // namespace leodivide::orbit
