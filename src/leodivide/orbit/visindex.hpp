#pragma once
// Per-epoch satellite spatial index: buckets satellites by sub-satellite
// point into a lat-band x lon-sector geodesic grid sized from the coverage
// central angle psi, so a ground cell queries only the O(k) satellites whose
// buckets can intersect its coverage cone instead of scanning the whole
// constellation. The candidate set is a strict superset of the truly
// visible set (callers keep their exact angular test as the final filter)
// and is duplicate-free; query() emits it in ascending satellite index,
// query_unsorted() in bucket-major order for callers whose selection
// tie-breaks on index explicitly (the scheduler). Either way, downstream
// selection is byte-identical to a full ascending scan.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "leodivide/orbit/propagate.hpp"

namespace leodivide::orbit {

class VisIndex {
 public:
  /// Rebuilds the index over `sats` for a coverage central angle of
  /// `psi_rad` (must be > 0). Internal storage is reused: rebuilding at an
  /// unchanged constellation size and coverage angle performs no heap
  /// allocation after the first build.
  void build(const std::vector<SatState>& sats, double psi_rad);

  /// Fills `out` (cleared first) with the index of every satellite whose
  /// bucket can contain a sub-point within psi of `cell` — a superset of
  /// the satellites actually inside the coverage cone — sorted ascending.
  /// Handles polar caps (all longitudes scanned once the cap reaches a
  /// pole) and the date-line longitude wrap.
  void query(const geo::GeoPoint& cell, std::vector<std::uint32_t>& out) const;

  /// As query(), but emits candidates in bucket-major order instead of
  /// globally sorted (the set is identical and duplicate-free — buckets
  /// partition the satellites). The scheduler's hot path uses this form:
  /// its satellite selection tie-breaks on index explicitly, so it does not
  /// pay the per-cell sort, which otherwise dominates the query cost.
  void query_unsorted(const geo::GeoPoint& cell,
                      std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t sat_count() const noexcept { return n_sats_; }
  [[nodiscard]] std::uint32_t band_count() const noexcept { return n_bands_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return bucket_start_.empty() ? 0 : bucket_start_.size() - 1;
  }

 private:
  [[nodiscard]] std::uint32_t band_of(double lat_deg) const noexcept;
  [[nodiscard]] std::uint32_t sector_of(std::uint32_t band,
                                        double lon_deg) const noexcept;

  std::size_t n_sats_ = 0;
  std::uint32_t n_bands_ = 0;
  double band_height_deg_ = 180.0;
  double psi_deg_ = 0.0;
  std::vector<std::uint32_t> band_sectors_;  ///< lon sectors per band
  std::vector<std::uint32_t> band_offset_;   ///< first bucket id per band
  std::vector<std::uint32_t> bucket_start_;  ///< CSR offsets (buckets + 1)
  std::vector<std::uint32_t> bucket_sats_;   ///< ascending within a bucket
  std::vector<std::uint32_t> sat_bucket_;    ///< build scratch
};

}  // namespace leodivide::orbit
