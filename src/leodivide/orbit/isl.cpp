#include "leodivide/orbit/isl.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

namespace {
constexpr double kSpeedOfLightKmPerMs = 299.792458;
}

IslGrid::IslGrid(const WalkerShell& shell) : shell_(shell) {
  if (shell_.planes == 0 || shell_.sats_per_plane == 0) {
    throw std::invalid_argument("IslGrid: empty shell");
  }
}

std::uint32_t IslGrid::index_of(SatAddress address) const {
  if (address.plane >= shell_.planes ||
      address.slot >= shell_.sats_per_plane) {
    throw std::out_of_range("IslGrid::index_of");
  }
  return address.plane * shell_.sats_per_plane + address.slot;
}

SatAddress IslGrid::address_of(std::uint32_t index) const {
  if (index >= size()) throw std::out_of_range("IslGrid::address_of");
  return {index / shell_.sats_per_plane, index % shell_.sats_per_plane};
}

std::vector<std::uint32_t> IslGrid::neighbors(std::uint32_t index) const {
  const SatAddress a = address_of(index);
  const std::uint32_t planes = shell_.planes;
  const std::uint32_t per_plane = shell_.sats_per_plane;
  std::vector<std::uint32_t> out;
  out.reserve(4);
  out.push_back(index_of({a.plane, (a.slot + 1) % per_plane}));
  out.push_back(index_of({a.plane, (a.slot + per_plane - 1) % per_plane}));
  if (planes > 1) {
    out.push_back(index_of({(a.plane + 1) % planes, a.slot}));
    if (planes > 2) {
      out.push_back(index_of({(a.plane + planes - 1) % planes, a.slot}));
    }
  }
  return out;
}

std::uint32_t IslGrid::hop_distance(std::uint32_t a, std::uint32_t b) const {
  if (a >= size() || b >= size()) {
    throw std::out_of_range("IslGrid::hop_distance");
  }
  if (a == b) return 0;
  std::vector<std::uint32_t> dist(size(), UINT32_MAX);
  std::queue<std::uint32_t> frontier;
  dist[a] = 0;
  frontier.push(a);
  while (!frontier.empty()) {
    const std::uint32_t cur = frontier.front();
    frontier.pop();
    for (std::uint32_t n : neighbors(cur)) {
      if (dist[n] != UINT32_MAX) continue;
      dist[n] = dist[cur] + 1;
      if (n == b) return dist[n];
      frontier.push(n);
    }
  }
  throw std::logic_error("IslGrid::hop_distance: disconnected +grid");
}

std::vector<std::uint32_t> IslGrid::hops_to_nearest(
    const std::vector<std::uint32_t>& sources) const {
  if (sources.empty()) {
    throw std::invalid_argument("hops_to_nearest: no sources");
  }
  std::vector<std::uint32_t> dist(size(), UINT32_MAX);
  std::queue<std::uint32_t> frontier;
  for (std::uint32_t s : sources) {
    if (s >= size()) throw std::out_of_range("hops_to_nearest: bad source");
    dist[s] = 0;
    frontier.push(s);
  }
  while (!frontier.empty()) {
    const std::uint32_t cur = frontier.front();
    frontier.pop();
    for (std::uint32_t n : neighbors(cur)) {
      if (dist[n] != UINT32_MAX) continue;
      dist[n] = dist[cur] + 1;
      frontier.push(n);
    }
  }
  return dist;
}

double IslGrid::intra_plane_link_km() const {
  const double r = geo::kEarthRadiusKm + shell_.altitude_km;
  const double theta =
      geo::kTwoPi / static_cast<double>(shell_.sats_per_plane);
  return 2.0 * r * std::sin(theta / 2.0);
}

double propagation_delay_ms(double distance_km) {
  if (distance_km < 0.0) {
    throw std::invalid_argument("propagation_delay_ms: negative distance");
  }
  return distance_km / kSpeedOfLightKmPerMs;
}

double bent_pipe_delay_ms(double ut_slant_km, double gw_slant_km) {
  return propagation_delay_ms(ut_slant_km) + propagation_delay_ms(gw_slant_km);
}

}  // namespace leodivide::orbit
