#include "leodivide/orbit/kepler.hpp"

#include <cmath>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

double CircularOrbit::radius_km() const noexcept {
  return geo::kEarthRadiusKm + altitude_km;
}

double CircularOrbit::period_s() const noexcept {
  const double r = radius_km();
  return geo::kTwoPi * std::sqrt(r * r * r / geo::kMuEarth);
}

double CircularOrbit::mean_motion_rad_s() const noexcept {
  return geo::kTwoPi / period_s();
}

double CircularOrbit::speed_km_s() const noexcept {
  return std::sqrt(geo::kMuEarth / radius_km());
}

geo::Vec3 eci_position(const CircularOrbit& orbit, double t_s) {
  const double u = orbit.phase_rad + orbit.mean_motion_rad_s() * t_s;
  const double r = orbit.radius_km();
  // Position in the orbital plane, then rotate by inclination about x and
  // RAAN about z.
  const double cos_u = std::cos(u);
  const double sin_u = std::sin(u);
  const double cos_i = std::cos(orbit.inclination_rad);
  const double sin_i = std::sin(orbit.inclination_rad);
  const double cos_o = std::cos(orbit.raan_rad);
  const double sin_o = std::sin(orbit.raan_rad);
  return {r * (cos_o * cos_u - sin_o * sin_u * cos_i),
          r * (sin_o * cos_u + cos_o * sin_u * cos_i),
          r * (sin_u * sin_i)};
}

geo::GeoPoint subsatellite_point(const CircularOrbit& orbit, double t_s) {
  const geo::Vec3 eci = eci_position(orbit, t_s);
  // Rotate ECI into ECEF by the accumulated Earth rotation angle.
  const double theta = geo::kEarthRotationRadPerSec * t_s;
  const double cos_t = std::cos(theta);
  const double sin_t = std::sin(theta);
  const geo::Vec3 ecef{eci.x * cos_t + eci.y * sin_t,
                       -eci.x * sin_t + eci.y * cos_t, eci.z};
  return geo::cartesian_to_spherical(ecef);
}

double max_ground_latitude_deg(const CircularOrbit& orbit) {
  const double inc = std::abs(geo::wrap_pi(orbit.inclination_rad));
  return geo::rad2deg(inc > geo::kPi / 2.0 ? geo::kPi - inc : inc);
}

}  // namespace leodivide::orbit
