#include "leodivide/orbit/visindex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

namespace {

// Query windows are inflated by this margin so a satellite sitting exactly
// on the coverage boundary (where the caller's cos-threshold test could
// still accept it under rounding) can never fall outside the scanned
// buckets. ~0.1 m on the ground — a few extra candidates at most.
constexpr double kWindowSlackDeg = 1e-6;

// Upper bounds keeping the grid small when psi is tiny (high elevation
// masks / very low shells). Coarser buckets only add candidates; the exact
// test downstream removes them.
constexpr std::uint32_t kMaxBands = 256;
constexpr std::uint32_t kMaxSectorsPerBand = 1024;

}  // namespace

std::uint32_t VisIndex::band_of(double lat_deg) const noexcept {
  const double scaled = (lat_deg + 90.0) / band_height_deg_;
  if (scaled <= 0.0) return 0;
  const auto b = static_cast<std::uint32_t>(scaled);
  return b >= n_bands_ ? n_bands_ - 1 : b;
}

std::uint32_t VisIndex::sector_of(std::uint32_t band,
                                  double lon_deg) const noexcept {
  const std::uint32_t sectors = band_sectors_[band];
  const double scaled =
      (lon_deg + 180.0) / (360.0 / static_cast<double>(sectors));
  if (scaled <= 0.0) return 0;
  const auto s = static_cast<std::uint32_t>(scaled);
  return s >= sectors ? sectors - 1 : s;
}

void VisIndex::build(const std::vector<SatState>& sats, double psi_rad) {
  if (!(psi_rad > 0.0)) {
    throw std::invalid_argument("VisIndex: coverage angle must be > 0");
  }
  n_sats_ = sats.size();
  psi_deg_ = geo::rad2deg(psi_rad);

  n_bands_ = std::clamp(static_cast<std::uint32_t>(180.0 / psi_deg_), 1U,
                        kMaxBands);
  band_height_deg_ = 180.0 / static_cast<double>(n_bands_);

  // Sector count per band: widths of at least one coverage angle at the
  // band latitude closest to the equator (where parallels are longest), so
  // a single query window spans O(1) sectors.
  band_sectors_.resize(n_bands_);
  band_offset_.resize(n_bands_ + 1);
  std::uint32_t buckets = 0;
  for (std::uint32_t b = 0; b < n_bands_; ++b) {
    const double lat_lo = -90.0 + static_cast<double>(b) * band_height_deg_;
    const double lat_hi = lat_lo + band_height_deg_;
    const double min_abs_lat =
        (lat_lo <= 0.0 && lat_hi >= 0.0)
            ? 0.0
            : std::min(std::abs(lat_lo), std::abs(lat_hi));
    const double parallel_deg = 360.0 * std::cos(geo::deg2rad(min_abs_lat));
    band_sectors_[b] = std::clamp(
        static_cast<std::uint32_t>(parallel_deg / psi_deg_), 1U,
        kMaxSectorsPerBand);
    band_offset_[b] = buckets;
    buckets += band_sectors_[b];
  }
  band_offset_[n_bands_] = buckets;

  // CSR fill in two passes; iterating satellites in index order keeps every
  // bucket's list ascending, which query() relies on.
  bucket_start_.assign(static_cast<std::size_t>(buckets) + 1, 0);
  sat_bucket_.resize(n_sats_);
  for (std::size_t i = 0; i < n_sats_; ++i) {
    const geo::GeoPoint& sp = sats[i].subpoint;
    const std::uint32_t band = band_of(sp.lat_deg);
    const std::uint32_t bucket =
        band_offset_[band] + sector_of(band, sp.lon_deg);
    sat_bucket_[i] = bucket;
    ++bucket_start_[bucket + 1];
  }
  for (std::size_t b = 1; b < bucket_start_.size(); ++b) {
    bucket_start_[b] += bucket_start_[b - 1];
  }
  bucket_sats_.resize(n_sats_);
  // bucket_start_ doubles as the write cursor (allocation-free): after the
  // fill, entry b holds bucket b's end, which is bucket b+1's start, so one
  // right-shift restores the offsets.
  for (std::size_t i = 0; i < n_sats_; ++i) {
    bucket_sats_[bucket_start_[sat_bucket_[i]]++] =
        static_cast<std::uint32_t>(i);
  }
  for (std::size_t b = bucket_start_.size() - 1; b > 0; --b) {
    bucket_start_[b] = bucket_start_[b - 1];
  }
  bucket_start_[0] = 0;
}

void VisIndex::query(const geo::GeoPoint& cell,
                     std::vector<std::uint32_t>& out) const {
  query_unsorted(cell, out);
  // Buckets partition the satellites, so the gather has no duplicates; the
  // sort only restores global ascending order for callers that want it.
  std::sort(out.begin(), out.end());
}

void VisIndex::query_unsorted(const geo::GeoPoint& cell,
                              std::vector<std::uint32_t>& out) const {
  out.clear();
  if (n_sats_ == 0) return;

  const double window_deg = psi_deg_ + kWindowSlackDeg;
  const std::uint32_t b_lo = band_of(cell.lat_deg - window_deg);
  const std::uint32_t b_hi = band_of(cell.lat_deg + window_deg);

  // Longitude half-width of the coverage cap: sin(dlon) = sin(psi)/cos(lat)
  // while the cap stays clear of the poles; a cap containing a pole spans
  // every longitude.
  const bool polar = std::abs(cell.lat_deg) + window_deg >= 90.0;
  double dlon_deg = 180.0;
  if (!polar) {
    const double s = std::sin(geo::deg2rad(window_deg)) /
                     std::cos(geo::deg2rad(cell.lat_deg));
    dlon_deg =
        geo::rad2deg(std::asin(std::min(1.0, s))) + kWindowSlackDeg;
  }
  const double lon = geo::wrap_longitude_deg(cell.lon_deg);

  for (std::uint32_t b = b_lo; b <= b_hi; ++b) {
    const std::uint32_t sectors = band_sectors_[b];
    const std::uint32_t base = band_offset_[b];
    const double sector_width = 360.0 / static_cast<double>(sectors);
    std::uint32_t s0 = 0;
    std::uint32_t count = sectors;
    if (dlon_deg < 180.0 - sector_width) {
      s0 = sector_of(b, geo::wrap_longitude_deg(lon - dlon_deg));
      const std::uint32_t s1 =
          sector_of(b, geo::wrap_longitude_deg(lon + dlon_deg));
      count = std::min(sectors, (s1 + sectors - s0) % sectors + 1);
    }
    std::uint32_t s = s0;
    for (std::uint32_t n = 0; n < count; ++n) {
      const std::uint32_t bucket = base + s;
      const std::uint32_t lo = bucket_start_[bucket];
      const std::uint32_t hi = bucket_start_[bucket + 1];
      out.insert(out.end(), bucket_sats_.begin() + lo,
                 bucket_sats_.begin() + hi);
      s = s + 1 == sectors ? 0 : s + 1;
    }
  }
}

}  // namespace leodivide::orbit
