#include "leodivide/orbit/tle.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

namespace {

constexpr double kSecondsPerDay = 86400.0;

double field_to_double(const std::string& line, std::size_t pos,
                       std::size_t len, const char* what) {
  if (line.size() < pos + len) {
    throw std::invalid_argument(std::string("TLE: line too short for ") +
                                what);
  }
  const std::string field = line.substr(pos, len);
  try {
    return std::stod(field);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("TLE: bad ") + what + ": '" +
                                field + "'");
  }
}

std::uint32_t field_to_u32(const std::string& line, std::size_t pos,
                           std::size_t len, const char* what) {
  return static_cast<std::uint32_t>(
      field_to_double(line, pos, len, what));
}

void check_line(const std::string& line, char expected_number) {
  if (line.size() < 69) {
    throw std::invalid_argument("TLE: line shorter than 69 columns");
  }
  if (line[0] != expected_number) {
    throw std::invalid_argument("TLE: unexpected line number");
  }
  const int expected = line[68] - '0';
  if (expected < 0 || expected > 9 ||
      tle_checksum(line.substr(0, 68)) != expected) {
    throw std::invalid_argument("TLE: checksum mismatch");
  }
}

}  // namespace

double Tle::semi_major_axis_km() const {
  if (mean_motion_rev_day <= 0.0) {
    throw std::domain_error("Tle: non-positive mean motion");
  }
  const double n_rad_s =
      mean_motion_rev_day * geo::kTwoPi / kSecondsPerDay;
  return std::cbrt(geo::kMuEarth / (n_rad_s * n_rad_s));
}

double Tle::altitude_km() const {
  return semi_major_axis_km() - geo::kEarthRadiusKm;
}

int tle_checksum(const std::string& line) {
  int sum = 0;
  for (char c : line) {
    if (c >= '0' && c <= '9') sum += c - '0';
    if (c == '-') sum += 1;
  }
  return sum % 10;
}

Tle parse_tle(const std::string& line1, const std::string& line2,
              const std::string& name) {
  check_line(line1, '1');
  check_line(line2, '2');
  Tle tle;
  tle.name = name;
  tle.catalog_number = field_to_u32(line1, 2, 5, "catalog number");
  const auto catalog2 = field_to_u32(line2, 2, 5, "catalog number");
  if (tle.catalog_number != catalog2) {
    throw std::invalid_argument("TLE: catalog numbers differ between lines");
  }
  tle.inclination_deg = field_to_double(line2, 8, 8, "inclination");
  tle.raan_deg = field_to_double(line2, 17, 8, "RAAN");
  // Eccentricity has an implied leading decimal point.
  tle.eccentricity =
      field_to_double(line2, 26, 7, "eccentricity") * 1e-7;
  tle.arg_perigee_deg = field_to_double(line2, 34, 8, "argument of perigee");
  tle.mean_anomaly_deg = field_to_double(line2, 43, 8, "mean anomaly");
  tle.mean_motion_rev_day = field_to_double(line2, 52, 11, "mean motion");
  return tle;
}

std::vector<Tle> read_tle_catalog(std::istream& in) {
  std::vector<Tle> out;
  std::string line;
  std::string pending_name;
  std::string line1;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '1' && line.size() >= 69 && line[1] == ' ') {
      line1 = line;
    } else if (line[0] == '2' && line.size() >= 69 && line[1] == ' ') {
      if (line1.empty()) {
        throw std::invalid_argument("TLE catalog: line 2 without line 1");
      }
      out.push_back(parse_tle(line1, line, pending_name));
      line1.clear();
      pending_name.clear();
    } else {
      pending_name = line;
      // Trim trailing spaces from the name line.
      while (!pending_name.empty() && pending_name.back() == ' ') {
        pending_name.pop_back();
      }
    }
  }
  if (!line1.empty()) {
    throw std::invalid_argument("TLE catalog: dangling line 1 at EOF");
  }
  return out;
}

CircularOrbit to_circular_orbit(const Tle& tle) {
  if (tle.eccentricity > 0.01) {
    throw std::invalid_argument(
        "to_circular_orbit: orbit too eccentric for the circular model");
  }
  CircularOrbit orbit;
  orbit.altitude_km = tle.altitude_km();
  orbit.inclination_rad = geo::deg2rad(tle.inclination_deg);
  orbit.raan_rad = geo::deg2rad(tle.raan_deg);
  orbit.phase_rad =
      geo::wrap_two_pi(geo::deg2rad(tle.arg_perigee_deg +
                                    tle.mean_anomaly_deg));
  return orbit;
}

std::string to_tle(const CircularOrbit& orbit, std::uint32_t catalog_number,
                   const std::string& name) {
  if (catalog_number > 99999) {
    throw std::invalid_argument("to_tle: catalog number exceeds 5 digits");
  }
  const double mean_motion =
      kSecondsPerDay / orbit.period_s();  // rev/day
  char line1[70];
  char line2[70];
  // Epoch and drag terms zeroed: the library propagates two-body from its
  // own epoch. Fixed-width fields per the TLE format specification.
  std::snprintf(line1, sizeof(line1),
                "1 %05uU 24001A   24001.00000000  .00000000  00000-0 "
                " 00000-0 0    0",
                catalog_number);
  std::snprintf(line2, sizeof(line2),
                "2 %05u %8.4f %8.4f 0000000 %8.4f %8.4f %11.8f    0",
                catalog_number, geo::rad2deg(orbit.inclination_rad),
                geo::rad2deg(geo::wrap_two_pi(orbit.raan_rad)), 0.0,
                geo::rad2deg(geo::wrap_two_pi(orbit.phase_rad)),
                mean_motion);
  std::string l1(line1);
  std::string l2(line2);
  l1.resize(68, ' ');
  l2.resize(68, ' ');
  l1.push_back(static_cast<char>('0' + tle_checksum(l1)));
  l2.push_back(static_cast<char>('0' + tle_checksum(l2)));
  std::string out;
  if (!name.empty()) out = name + "\n";
  return out + l1 + "\n" + l2 + "\n";
}

}  // namespace leodivide::orbit
