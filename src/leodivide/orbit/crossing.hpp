#pragma once
// Analytic cos-threshold crossing solver: the times at which a satellite on
// a circular orbit enters or leaves the coverage cone of a fixed ground
// point. The visibility test used everywhere in the simulator is
//
//   g(t) = dot(cell_unit, sat_unit(t)) - cos(psi)  >= 0,
//
// and for a circular orbit in the rotating Earth frame g is a smooth
// two-frequency function (mean motion n and Earth rotation omega_e) whose
// derivative is bounded by L = n + omega_e. That Lipschitz bound turns
// root finding into a *certified* procedure: an interval whose endpoint
// magnitudes sum to more than L * width provably contains no crossing and
// is discarded without further evaluation; everything else is bisected
// until the crossing is isolated inside a window narrower than the
// configured floor. The event engine reschedules beams only inside those
// windows, so the certificate — not sampling density — is what guarantees
// no visibility flip is ever missed.
//
// The solver is a pure function of its inputs (fixed evaluation order, no
// global state), so crossing sets are byte-reproducible at any thread
// count.

#include <cstddef>
#include <vector>

#include "leodivide/geo/ecef.hpp"
#include "leodivide/orbit/kepler.hpp"

namespace leodivide::orbit {

/// One certified crossing (or near-tangent uncertainty) of the coverage
/// threshold. All visibility flips of the pair inside [window_lo_s,
/// window_hi_s] are bracketed by the window; outside the union of emitted
/// windows the sign of g is certified constant.
struct Crossing {
  double time_s = 0.0;       ///< representative crossing time (window mid)
  double window_lo_s = 0.0;  ///< certified bracket around every flip
  double window_hi_s = 0.0;
  bool rising = false;  ///< g goes negative -> positive (satellite rises)
  bool certain = true;  ///< false: near-tangent graze, sign change unresolved
};

/// Solver tuning. The defaults are safe for every LEO shell the library
/// models; they only trade work for window width.
struct CrossingConfig {
  /// Emitted windows are subdivided to at most this width [s]. Must be > 0.
  double window_s = 1e-3;
  /// Certificates require the endpoint-magnitude sum to exceed
  /// L * width + slack; the slack absorbs float evaluation noise between
  /// this solver and the scheduler's own dot product.
  double eval_slack = 1e-11;
};

/// Reusable scratch for find(); holds no observable state. One instance
/// per thread.
struct CrossingScratch {
  /// Pending [lo, hi] intervals with cached endpoint evaluations.
  struct Interval {
    double lo, hi, g_lo, g_hi;
  };
  std::vector<Interval> stack;
};

/// Crossing solver for one circular orbit against a fixed coverage-cone
/// threshold cos(psi). Construction precomputes the orbit-plane basis; a
/// solver is cheap to build and immutable afterwards.
class ConeCrossingSolver {
 public:
  ConeCrossingSolver(const CircularOrbit& orbit, double cos_psi,
                     CrossingConfig config = {});

  /// g(t) for the ground unit vector `u` (exact model function, evaluated
  /// with a fixed operation order).
  [[nodiscard]] double eval(const geo::Vec3& u, double t_s) const noexcept;

  /// Lipschitz bound on |dg/dt| [1/s]: mean motion + Earth rotation.
  [[nodiscard]] double rate_bound() const noexcept { return rate_bound_; }

  /// Latitude prefilter: false when the orbit's sub-satellite band can
  /// never come within the coverage angle of `u` (the pair has no
  /// crossings and is never visible). Conservative: only returns false
  /// when visibility is strictly impossible.
  [[nodiscard]] bool can_ever_see(const geo::Vec3& u) const noexcept;

  /// Appends every crossing of g over [t_begin, t_end] to `out`, in
  /// ascending window order. `scratch` is caller-owned per-thread scratch;
  /// repeated calls at warm capacity perform no heap allocation (beyond
  /// growth of `out` itself).
  void find(const geo::Vec3& u, double t_begin, double t_end,
            std::vector<Crossing>& out, CrossingScratch& scratch) const;

 private:
  geo::Vec3 p_;  ///< unit basis: ascending-node direction
  geo::Vec3 q_;  ///< unit basis: 90 deg ahead in the orbital plane
  double mean_motion_;
  double phase_;
  double cos_psi_;
  double psi_rad_;
  double abs_sin_inc_;  ///< |sin(inclination)|: max |z| of the unit track
  double rate_bound_;
  CrossingConfig config_;
};

}  // namespace leodivide::orbit
