#pragma once
// Multi-shell constellations. Real deployments are unions of Walker shells
// at different inclinations and altitudes (Starlink Gen1 files five); the
// surface density of the union is the sum of the per-shell Walker
// densities. This module extends the single-shell latitude-density model
// of density.hpp to shell mixtures and answers the design question the
// paper's model raises: since the binding cell sits at ~36.5 deg N, how
// much does a lower-inclination shell reduce the required fleet?

#include <vector>

#include "leodivide/orbit/density.hpp"
#include "leodivide/orbit/walker.hpp"

namespace leodivide::orbit {

/// A constellation made of several Walker shells.
class MultiShellConstellation {
 public:
  MultiShellConstellation() = default;
  explicit MultiShellConstellation(std::vector<WalkerShell> shells);

  void add_shell(const WalkerShell& shell);

  [[nodiscard]] const std::vector<WalkerShell>& shells() const noexcept {
    return shells_;
  }
  [[nodiscard]] std::uint32_t total_sats() const noexcept;

  /// Time-averaged satellites per km^2 at a latitude: the sum of the
  /// per-shell Walker densities.
  [[nodiscard]] double surface_density_per_km2(double lat_deg) const;

  /// Maximum latitude with non-zero density (the highest inclination).
  [[nodiscard]] double max_covered_latitude_deg() const;

  /// Every orbit of every shell, for propagation.
  [[nodiscard]] std::vector<CircularOrbit> all_orbits() const;

  /// Scales every shell's satellite count by `factor` so the mixture
  /// reaches `required_density_per_km2` at `lat_deg`; returns the scaled
  /// total satellite count (fractional — callers round per their needs).
  /// Throws std::invalid_argument if no shell covers the latitude.
  [[nodiscard]] double size_for_density(double required_density_per_km2,
                                        double lat_deg) const;

 private:
  std::vector<WalkerShell> shells_;
};

/// The five Starlink Gen1 shells as authorised by the FCC (2021
/// modification): 53.0/550 (72x22), 53.2/540 (72x22), 70.0/570 (36x20),
/// 97.6/560 (6x58), 97.6/560.1 (4x43).
[[nodiscard]] MultiShellConstellation starlink_gen1();

}  // namespace leodivide::orbit
