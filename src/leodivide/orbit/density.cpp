#include "leodivide/orbit/density.hpp"

#include <cmath>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"
#include "leodivide/geo/greatcircle.hpp"
#include "leodivide/orbit/propagate.hpp"

namespace leodivide::orbit {

namespace {

// sqrt(sin^2 i - sin^2 phi), or 0 outside the band.
double band_term(double lat_deg, double inclination_deg) {
  const double si = std::sin(geo::deg2rad(inclination_deg));
  const double sp = std::sin(geo::deg2rad(lat_deg));
  const double d = si * si - sp * sp;
  return d <= 0.0 ? 0.0 : std::sqrt(d);
}

}  // namespace

double latitude_pdf(double lat_deg, double inclination_deg) {
  const double term = band_term(lat_deg, inclination_deg);
  // leolint:allow(float-eq): band_term returns exactly 0.0 outside band
  if (term == 0.0) return 0.0;
  return std::cos(geo::deg2rad(lat_deg)) / (geo::kPi * term);
}

double surface_density_per_km2(double total_sats, double lat_deg,
                               double inclination_deg) {
  const double term = band_term(lat_deg, inclination_deg);
  // leolint:allow(float-eq): band_term returns exactly 0.0 outside band
  if (term == 0.0) return 0.0;
  const double r2 = geo::kEarthRadiusKm * geo::kEarthRadiusKm;
  return total_sats / (2.0 * geo::kPi * geo::kPi * r2 * term);
}

double relative_density(double lat_deg, double inclination_deg) {
  const double term = band_term(lat_deg, inclination_deg);
  // leolint:allow(float-eq): band_term returns exactly 0.0 outside band
  if (term == 0.0) return 0.0;
  return 2.0 / (geo::kPi * term);
}

double constellation_size_for_density(double required_density_per_km2,
                                      double lat_deg,
                                      double inclination_deg) {
  if (required_density_per_km2 <= 0.0) {
    throw std::invalid_argument(
        "constellation_size_for_density: density must be > 0");
  }
  const double term = band_term(lat_deg, inclination_deg);
  // leolint:allow(float-eq): band_term returns exactly 0.0 outside band
  if (term == 0.0) {
    throw std::invalid_argument(
        "constellation_size_for_density: latitude outside coverage band");
  }
  const double r2 = geo::kEarthRadiusKm * geo::kEarthRadiusKm;
  return required_density_per_km2 * 2.0 * geo::kPi * geo::kPi * r2 * term;
}

std::vector<double> empirical_density_per_km2(const WalkerShell& shell,
                                              std::size_t epochs,
                                              std::size_t bands) {
  if (epochs == 0 || bands == 0) {
    throw std::invalid_argument("empirical_density: epochs/bands must be > 0");
  }
  const auto orbits = make_constellation(shell);
  std::vector<double> counts(bands, 0.0);
  const double period = orbits.front().period_s();
  for (std::size_t e = 0; e < epochs; ++e) {
    const double t =
        period * static_cast<double>(e) / static_cast<double>(epochs);
    for (const auto& orbit : orbits) {
      const geo::GeoPoint sub = subsatellite_point(orbit, t);
      auto band = static_cast<std::size_t>((sub.lat_deg + 90.0) / 180.0 *
                                           static_cast<double>(bands));
      if (band >= bands) band = bands - 1;
      counts[band] += 1.0;
    }
  }
  // Convert to density: average count per epoch divided by band area.
  std::vector<double> density(bands, 0.0);
  for (std::size_t b = 0; b < bands; ++b) {
    const double lat_lo = -90.0 + 180.0 * static_cast<double>(b) /
                                      static_cast<double>(bands);
    const double lat_hi = lat_lo + 180.0 / static_cast<double>(bands);
    const double area =
        geo::kEarthSurfaceAreaKm2 * geo::latitude_band_fraction(lat_lo, lat_hi);
    density[b] = counts[b] / static_cast<double>(epochs) / area;
  }
  return density;
}

}  // namespace leodivide::orbit
