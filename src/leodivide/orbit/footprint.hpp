#pragma once
// Satellite footprint geometry: how much of the Earth's surface a satellite
// at a given altitude can serve, subject to a minimum terminal elevation
// angle, and how many service cells fall inside that footprint.

namespace leodivide::orbit {

/// Earth central angle [rad] from the sub-satellite point to the edge of
/// coverage for a satellite at `altitude_km` and a terminal elevation mask
/// of `min_elevation_deg`.
[[nodiscard]] double coverage_central_angle_rad(double altitude_km,
                                                double min_elevation_deg);

/// Great-circle radius [km] of the coverage footprint on the surface.
[[nodiscard]] double footprint_radius_km(double altitude_km,
                                         double min_elevation_deg);

/// Footprint area [km^2] (spherical cap).
[[nodiscard]] double footprint_area_km2(double altitude_km,
                                        double min_elevation_deg);

/// Number of cells of `cell_area_km2` that fit in the footprint. This upper
/// bounds how many cells a satellite could serve if it had unlimited beams;
/// the binding limit in practice is the beam count (see core/beamspread).
[[nodiscard]] double cells_in_footprint(double altitude_km,
                                        double min_elevation_deg,
                                        double cell_area_km2);

/// Nadir angle [rad] at the satellite corresponding to the coverage edge —
/// the half-angle the antenna must steer across.
[[nodiscard]] double edge_nadir_angle_rad(double altitude_km,
                                          double min_elevation_deg);

}  // namespace leodivide::orbit
