#include "leodivide/orbit/kernels.hpp"

// The retained scalar references: one element per loop iteration, exactly
// the expressions the pre-SIMD scheduler and propagator ran. This TU is
// compiled with compiler auto-vectorization disabled and only the baseline
// target flags (see src/CMakeLists.txt), so the `_scalar` entry points stay
// a genuine element-at-a-time reference — both the bit-identity oracle for
// tests/test_simd.cpp and the honest denominator for the bench ratio in
// BENCH_graph.json. The arithmetic is the same expression, in the same
// order, as the vector kernels' per-lane operations; with -ffp-contract=off
// set globally the results are bit-identical by construction.

namespace leodivide::orbit {

std::size_t filter_visible_scalar(double cx, double cy, double cz,
                                  const double* ux, const double* uy,
                                  const double* uz,
                                  const std::uint32_t* candidates,
                                  std::size_t n, double cos_psi,
                                  std::uint32_t* out) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t si = candidates[i];
    if (cx * ux[si] + cy * uy[si] + cz * uz[si] >= cos_psi) {
      out[kept++] = candidates[i];
    }
  }
  return kept;
}

void visible_mask_scalar(double cx, double cy, double cz, const double* ux,
                         const double* uy, const double* uz, std::size_t n,
                         double cos_psi, std::uint8_t* out_mask) {
  for (std::size_t i = 0; i < n; ++i) {
    out_mask[i] = cx * ux[i] + cy * uy[i] + cz * uz[i] >= cos_psi ? 1 : 0;
  }
}

void rotate_about_z_scalar(const double* x, const double* y, double c,
                           double s, std::size_t n, double* out_x,
                           double* out_y) {
  for (std::size_t i = 0; i < n; ++i) {
    // Both inputs loaded before either store: in-place rotation
    // (out_x == x, out_y == y) stays well-defined.
    const double xi = x[i];
    const double yi = y[i];
    out_x[i] = xi * c + yi * s;
    out_y[i] = -xi * s + yi * c;
  }
}

}  // namespace leodivide::orbit
