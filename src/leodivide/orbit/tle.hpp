#pragma once
// Two-Line Element (TLE) ephemeris I/O. Real constellation states arrive
// as TLE sets (CelesTrak publishes Starlink's daily); this module parses
// them into the library's circular-orbit model and serialises generated
// constellations back out, so simulator runs can use live ephemerides
// instead of ideal Walker geometry.
//
// Scope: near-circular LEO orbits. Eccentricity is parsed but orbits with
// e > 0.01 are rejected by to_circular_orbit (the analysis model is
// circular); epoch-dependent terms (drag, SGP4 propagation) are out of
// scope — positions come from the library's two-body propagator.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "leodivide/orbit/kepler.hpp"

namespace leodivide::orbit {

/// Parsed fields of one TLE record.
struct Tle {
  std::string name;              ///< line 0 (optional, may be empty)
  std::uint32_t catalog_number = 0;
  double inclination_deg = 0.0;
  double raan_deg = 0.0;
  double eccentricity = 0.0;
  double arg_perigee_deg = 0.0;
  double mean_anomaly_deg = 0.0;
  double mean_motion_rev_day = 0.0;

  /// Semi-major axis [km] implied by the mean motion (two-body).
  [[nodiscard]] double semi_major_axis_km() const;

  /// Altitude above the spherical Earth [km].
  [[nodiscard]] double altitude_km() const;
};

/// Computes the modulo-10 checksum of a TLE line (last column).
[[nodiscard]] int tle_checksum(const std::string& line);

/// Parses one element set from two (or three, with a name line) lines.
/// Throws std::invalid_argument on malformed lines, bad checksums, or
/// mismatched catalog numbers.
[[nodiscard]] Tle parse_tle(const std::string& line1,
                            const std::string& line2,
                            const std::string& name = "");

/// Reads every element set from a stream of 3-line (name + 2) or 2-line
/// records. Blank lines are skipped.
[[nodiscard]] std::vector<Tle> read_tle_catalog(std::istream& in);

/// Converts to the library's circular orbit (phase = arg of perigee + mean
/// anomaly). Throws std::invalid_argument when eccentricity > 0.01.
[[nodiscard]] CircularOrbit to_circular_orbit(const Tle& tle);

/// Renders a circular orbit as a valid element set (lines 1 and 2,
/// including checksums). `name` becomes line 0 when non-empty.
[[nodiscard]] std::string to_tle(const CircularOrbit& orbit,
                                 std::uint32_t catalog_number,
                                 const std::string& name = "");

}  // namespace leodivide::orbit
