#pragma once
// Walker constellation generation. Starlink's shells are Walker-Delta
// constellations (e.g. the 53.0 deg / 72 planes x 22 sats first shell); the
// notation i:T/P/F gives inclination, total satellites, planes, and the
// inter-plane phasing factor.

#include <cstdint>
#include <string>
#include <vector>

#include "leodivide/orbit/kepler.hpp"

namespace leodivide::orbit {

/// Parameters of a Walker-Delta constellation shell.
struct WalkerShell {
  double inclination_deg = 53.0;
  double altitude_km = 550.0;
  std::uint32_t planes = 72;
  std::uint32_t sats_per_plane = 22;
  std::uint32_t phasing = 1;  ///< Walker F parameter in [0, planes)

  [[nodiscard]] std::uint32_t total_sats() const noexcept {
    return planes * sats_per_plane;
  }

  /// "53.0:1584/72/1 @ 550km" style description.
  [[nodiscard]] std::string to_string() const;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const WalkerShell&, const WalkerShell&) = default;
};

/// Starlink Gen1 first shell (the workhorse shell over the US).
[[nodiscard]] WalkerShell starlink_shell1() noexcept;

/// Expands a shell into per-satellite circular orbits. Satellite k of plane
/// p has RAAN = 2*pi*p/P and phase = 2*pi*(k/S + F*p/(P*S)).
[[nodiscard]] std::vector<CircularOrbit> make_constellation(
    const WalkerShell& shell);

}  // namespace leodivide::orbit
