#include "leodivide/orbit/crossing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

namespace {

// Initial sweep step scale: L * h0 ~ kSweepDrop, i.e. the endpoint
// magnitudes needed to certify a first-level interval root-free. 0.5 keeps
// most of the horizon certified at the top level while the subdivision
// handles every pass boundary.
constexpr double kSweepDrop = 0.5;

}  // namespace

ConeCrossingSolver::ConeCrossingSolver(const CircularOrbit& orbit,
                                       double cos_psi, CrossingConfig config)
    : mean_motion_(orbit.mean_motion_rad_s()),
      phase_(orbit.phase_rad),
      cos_psi_(cos_psi),
      config_(config) {
  if (!(config_.window_s > 0.0)) {
    throw std::invalid_argument("ConeCrossingSolver: window_s must be > 0");
  }
  if (cos_psi < -1.0 || cos_psi > 1.0) {
    throw std::invalid_argument("ConeCrossingSolver: cos_psi out of [-1, 1]");
  }
  psi_rad_ = std::acos(cos_psi);
  const double cos_i = std::cos(orbit.inclination_rad);
  const double sin_i = std::sin(orbit.inclination_rad);
  const double cos_o = std::cos(orbit.raan_rad);
  const double sin_o = std::sin(orbit.raan_rad);
  // eci_unit(t) = cos(u) * P + sin(u) * Q with u = phase + n t — the same
  // decomposition eci_position uses, with the radius factored out.
  p_ = {cos_o, sin_o, 0.0};
  q_ = {-sin_o * cos_i, cos_o * cos_i, sin_i};
  abs_sin_inc_ = std::abs(sin_i);
  rate_bound_ = mean_motion_ + geo::kEarthRotationRadPerSec;
}

double ConeCrossingSolver::eval(const geo::Vec3& u, double t_s) const noexcept {
  // dot(ecef_sat_unit, u) == dot(eci_sat_unit, Rz(theta) u): rotating the
  // ground point forward by the Earth angle is cheaper than rotating the
  // satellite back, and needs only one extra sincos per evaluation.
  const double theta = geo::kEarthRotationRadPerSec * t_s;
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  const geo::Vec3 u_rot{u.x * c - u.y * s, u.x * s + u.y * c, u.z};
  const double au = p_.dot(u_rot);
  const double bu = q_.dot(u_rot);
  const double arg = phase_ + mean_motion_ * t_s;
  return std::cos(arg) * au + std::sin(arg) * bu - cos_psi_;
}

bool ConeCrossingSolver::can_ever_see(const geo::Vec3& u) const noexcept {
  // The satellite unit vector's z component is sin(u) * sin(i), bounded by
  // |sin i| for all time (Earth rotation leaves z untouched). The minimum
  // central angle to a ground point at latitude phi is therefore at least
  // |phi| - asin(|sin i|); if that exceeds psi (with margin for the asin
  // rounding), no crossing can ever occur.
  constexpr double kMarginRad = 1e-6;
  const double z = std::clamp(u.z, -1.0, 1.0);
  const double lat = std::asin(std::abs(z));
  const double band = std::asin(std::min(1.0, abs_sin_inc_));
  return lat - band <= psi_rad_ + kMarginRad;
}

void ConeCrossingSolver::find(const geo::Vec3& u, double t_begin, double t_end,
                              std::vector<Crossing>& out,
                              CrossingScratch& scratch) const {
  if (!(t_end > t_begin)) return;
  if (!can_ever_see(u)) return;

  const double lip = rate_bound_;
  const double h0 = std::max(config_.window_s, kSweepDrop / lip);
  const double certify_slack = config_.eval_slack;

  // Emit one resolved window. Windows come out of the subdivision in
  // ascending time order because intervals are processed left to right.
  const auto emit = [&](double lo, double hi, double g_lo, double g_hi) {
    Crossing c;
    c.window_lo_s = lo;
    c.window_hi_s = hi;
    c.time_s = lo + 0.5 * (hi - lo);
    const bool sign_change = (g_lo < 0.0) != (g_hi < 0.0);
    c.certain = sign_change;
    c.rising = g_lo < 0.0;
    out.push_back(c);
  };

  // Depth-first, leftmost-interval-first subdivision driven by an explicit
  // stack (LIFO: pushing the right half before the left makes the left pop
  // first, so emission order is ascending in time).
  auto& stack = scratch.stack;
  stack.clear();

  // Seed the stack with the uniform top-level sweep, rightmost first.
  const std::size_t n_seed = static_cast<std::size_t>(
      std::ceil((t_end - t_begin) / h0));
  double g_prev = eval(u, t_begin);
  // Evaluate boundaries left to right once, collecting segments; then
  // reverse so the stack pops them in ascending order.
  const std::size_t stack_base = stack.size();
  double lo = t_begin;
  for (std::size_t k = 1; k <= n_seed; ++k) {
    const double hi = k == n_seed
                          ? t_end
                          : t_begin + static_cast<double>(k) * h0;
    const double g_hi = eval(u, hi);
    stack.push_back({lo, hi, g_prev, g_hi});
    lo = hi;
    g_prev = g_hi;
  }
  std::reverse(stack.begin() + static_cast<std::ptrdiff_t>(stack_base),
               stack.end());

  while (!stack.empty()) {
    const CrossingScratch::Interval iv = stack.back();
    stack.pop_back();
    const double width = iv.hi - iv.lo;
    // Certified root-free: g cannot bridge the endpoint magnitudes within
    // the Lipschitz budget (and both endpoints are on the same side).
    const bool same_side = (iv.g_lo < 0.0) == (iv.g_hi < 0.0);
    if (same_side &&
        std::abs(iv.g_lo) + std::abs(iv.g_hi) > lip * width + certify_slack) {
      continue;
    }
    if (width <= config_.window_s) {
      // Narrow enough: a sign change is a certain crossing window; a
      // same-side residual is a potential graze (local extremum hugging
      // the threshold) and is emitted as an uncertain window so callers
      // treat the whole interval as dirty.
      emit(iv.lo, iv.hi, iv.g_lo, iv.g_hi);
      continue;
    }
    const double mid = iv.lo + 0.5 * width;
    const double g_mid = eval(u, mid);
    stack.push_back({mid, iv.hi, g_mid, iv.g_hi});  // right half pops second
    stack.push_back({iv.lo, mid, iv.g_lo, g_mid});
  }
}

}  // namespace leodivide::orbit
