#pragma once
// Satellite surface density as a function of latitude — the quantity the
// paper "works backwards from" to size the constellation (P2: peak demand
// density at a location determines total constellation size).
//
// For a Walker constellation of N satellites at inclination i, the
// time-averaged sub-satellite latitude of each satellite has density
//     f(phi) = cos(phi) / (pi * sqrt(sin^2 i - sin^2 phi)),   |phi| < i,
// so the surface density of satellites (per km^2 of Earth surface) at
// latitude phi is
//     rho(phi) = N / (2 * pi^2 * R^2 * sqrt(sin^2 i - sin^2 phi)).
// Density diverges near phi -> i (satellites "linger" at the top of their
// ground track) and is lowest at the equator.

#include <vector>

#include "leodivide/orbit/walker.hpp"

namespace leodivide::orbit {

/// Probability density of the sub-satellite latitude [per radian of
/// latitude] for an inclined circular orbit. Zero for |phi| >= i.
[[nodiscard]] double latitude_pdf(double lat_deg, double inclination_deg);

/// Time-averaged satellites per km^2 at a latitude, for a constellation of
/// `total_sats` at `inclination_deg`. Zero outside the covered band.
[[nodiscard]] double surface_density_per_km2(double total_sats,
                                             double lat_deg,
                                             double inclination_deg);

/// Density at `lat_deg` relative to the global mean N / (4 pi R^2):
/// 2 / (pi * sqrt(sin^2 i - sin^2 phi)). > 1 near the inclination limit.
[[nodiscard]] double relative_density(double lat_deg, double inclination_deg);

/// Inverse problem: the total constellation size needed so that the surface
/// density at `lat_deg` reaches `required_density_per_km2` (i.e. one
/// satellite per 1/required area). This is the paper's sizing primitive.
[[nodiscard]] double constellation_size_for_density(
    double required_density_per_km2, double lat_deg, double inclination_deg);

/// Empirical check of the analytic model: propagates the shell over one
/// full period sampled at `epochs` instants and histograms sub-satellite
/// latitudes into `bands` equal-latitude bins over [-90, 90]. Returns
/// satellites per km^2 per bin. Used by tests and the ablation bench to
/// validate latitude_pdf against actual orbital motion.
[[nodiscard]] std::vector<double> empirical_density_per_km2(
    const WalkerShell& shell, std::size_t epochs, std::size_t bands);

}  // namespace leodivide::orbit
