#pragma once
// SIMD kernels for the two hottest inner loops of the pipeline: the
// visibility cos-threshold test behind BeamScheduler (a cell sees a
// satellite iff the dot of their unit radials is >= cos psi) and the batched
// Earth-rotation applied to every satellite per epoch in propagate_all.
//
// Every kernel has a `_scalar` twin that is the retained reference
// implementation, and the dispatching entry point is guaranteed
// bit-identical to it: per-lane vector arithmetic is IEEE-identical to the
// scalar expression (the build disables FP contraction), lane order is
// fixed, and the golden suite in tests/test_simd.cpp bit-compares the two
// on adversarial inputs (poles, date line, exact-threshold grazing
// elevations, tail lanes). The SIMD code itself lives only in kernels.cpp —
// the one TU that may carry wider target flags — so nothing flag-dependent
// is ever inlined into other TUs. The twins live in kernels_scalar.cpp,
// compiled with compiler auto-vectorization disabled and baseline target
// flags, so `_scalar` means genuinely one element per iteration — both the
// bit-identity oracle and the honest denominator for the bench ratio.

#include <cstddef>
#include <cstdint>

namespace leodivide::orbit {

/// Lane width compiled into the kernels TU (1 = scalar fallback).
[[nodiscard]] std::size_t kernel_lanes() noexcept;

/// Human-readable backend tag for bench labels, e.g. "vec4" or "scalar".
[[nodiscard]] const char* kernel_backend() noexcept;

/// Order-preserving visible-candidate compaction: writes to out[] every
/// index si = candidates[i] (i ascending) whose satellite unit vector
/// (ux[si], uy[si], uz[si]) satisfies cx*ux + cy*uy + cz*uz >= cos_psi, and
/// returns how many were kept. `out` must have room for n entries and may
/// not alias `candidates`. Bit-identical to filter_visible_scalar.
std::size_t filter_visible(double cx, double cy, double cz, const double* ux,
                           const double* uy, const double* uz,
                           const std::uint32_t* candidates, std::size_t n,
                           double cos_psi, std::uint32_t* out);

/// Scalar reference for filter_visible (the pre-SIMD scheduler inner test).
std::size_t filter_visible_scalar(double cx, double cy, double cz,
                                  const double* ux, const double* uy,
                                  const double* uz,
                                  const std::uint32_t* candidates,
                                  std::size_t n, double cos_psi,
                                  std::uint32_t* out);

/// Dense visibility mask over all n satellites in SoA layout:
/// out_mask[i] = 1 iff cx*ux[i] + cy*uy[i] + cz*uz[i] >= cos_psi, else 0.
/// Bit-identical to visible_mask_scalar.
void visible_mask(double cx, double cy, double cz, const double* ux,
                  const double* uy, const double* uz, std::size_t n,
                  double cos_psi, std::uint8_t* out_mask);

/// Scalar reference for visible_mask.
void visible_mask_scalar(double cx, double cy, double cz, const double* ux,
                         const double* uy, const double* uz, std::size_t n,
                         double cos_psi, std::uint8_t* out_mask);

/// Batched epoch rotation about the Earth axis, the expression from
/// ecef_position verbatim per element:
///   out_x[i] =  x[i] * c + y[i] * s
///   out_y[i] = -x[i] * s + y[i] * c
/// In-place operation (out_x == x, out_y == y) is supported: both inputs of
/// an element are loaded before either output is stored. Bit-identical to
/// rotate_about_z_scalar.
void rotate_about_z(const double* x, const double* y, double c, double s,
                    std::size_t n, double* out_x, double* out_y);

/// Scalar reference for rotate_about_z.
void rotate_about_z_scalar(const double* x, const double* y, double c,
                           double s, std::size_t n, double* out_x,
                           double* out_y);

}  // namespace leodivide::orbit
