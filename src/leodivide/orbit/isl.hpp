#pragma once
// Inter-satellite link (ISL) topology. Starlink satellites that cannot see
// a gateway directly relay traffic over laser ISLs; the standard topology
// is the "+grid": each satellite links to its two intra-plane neighbours
// and one counterpart in each adjacent plane (Section 2.2's "indirectly via
// inter-satellite link"). This module builds the +grid for a Walker shell
// and answers reachability/latency questions: hop counts to the nearest
// gateway-connected satellite and end-to-end propagation delay.

#include <cstdint>
#include <vector>

#include "leodivide/orbit/propagate.hpp"
#include "leodivide/orbit/walker.hpp"

namespace leodivide::orbit {

/// Satellite index within a Walker shell, addressed as (plane, slot).
struct SatAddress {
  std::uint32_t plane = 0;
  std::uint32_t slot = 0;
  friend bool operator==(const SatAddress&, const SatAddress&) = default;
};

/// The +grid ISL topology over one Walker shell.
class IslGrid {
 public:
  explicit IslGrid(const WalkerShell& shell);

  [[nodiscard]] const WalkerShell& shell() const noexcept { return shell_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return shell_.total_sats();
  }

  /// Flat index <-> (plane, slot).
  [[nodiscard]] std::uint32_t index_of(SatAddress address) const;
  [[nodiscard]] SatAddress address_of(std::uint32_t index) const;

  /// The four +grid neighbours of a satellite: previous/next in plane,
  /// same slot in previous/next plane (all rings wrap).
  [[nodiscard]] std::vector<std::uint32_t> neighbors(
      std::uint32_t index) const;

  /// Minimum ISL hop count between two satellites (BFS over the +grid;
  /// closed form for the torus would ignore phasing, so we keep it exact).
  [[nodiscard]] std::uint32_t hop_distance(std::uint32_t a,
                                           std::uint32_t b) const;

  /// Hop count from every satellite to its nearest satellite in `sources`
  /// (e.g. the gateway-connected set). Unreachable entries (empty sources)
  /// throw std::invalid_argument.
  [[nodiscard]] std::vector<std::uint32_t> hops_to_nearest(
      const std::vector<std::uint32_t>& sources) const;

  /// Physical length [km] of one intra-plane ISL (chord between adjacent
  /// slots of a plane).
  [[nodiscard]] double intra_plane_link_km() const;

 private:
  WalkerShell shell_;
};

/// One-way propagation delay [ms] over a path of `distance_km` at the
/// speed of light in vacuum (laser ISLs and radio both ~c).
[[nodiscard]] double propagation_delay_ms(double distance_km);

/// One-way bent-pipe delay [ms]: UT -> satellite -> gateway, both at
/// `slant_km` (typical bent-pipe geometry with a nearby gateway).
[[nodiscard]] double bent_pipe_delay_ms(double ut_slant_km,
                                        double gw_slant_km);

}  // namespace leodivide::orbit
