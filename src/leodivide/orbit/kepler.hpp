#pragma once
// Circular Keplerian orbital elements and two-body relations. Starlink
// shells are near-circular, so the library models circular orbits only;
// eccentric elements would add nothing to the paper's capacity model.

#include "leodivide/geo/ecef.hpp"

namespace leodivide::orbit {

/// Circular orbit elements. Angles in radians.
struct CircularOrbit {
  double altitude_km = 550.0;      ///< above the spherical Earth surface
  double inclination_rad = 0.0;    ///< orbital plane inclination
  double raan_rad = 0.0;           ///< right ascension of ascending node
  double phase_rad = 0.0;          ///< argument of latitude at epoch

  /// Orbit radius from the Earth's center [km].
  [[nodiscard]] double radius_km() const noexcept;

  /// Orbital period [s] from Kepler's third law.
  [[nodiscard]] double period_s() const noexcept;

  /// Mean motion [rad/s].
  [[nodiscard]] double mean_motion_rad_s() const noexcept;

  /// Orbital speed [km/s].
  [[nodiscard]] double speed_km_s() const noexcept;
};

/// Position in the Earth-centered inertial frame at time t since epoch.
[[nodiscard]] geo::Vec3 eci_position(const CircularOrbit& orbit, double t_s);

/// Geodetic sub-satellite point at time t, accounting for Earth rotation
/// (GMST angle = earth_rotation * t, epoch aligned with ECI x-axis).
[[nodiscard]] geo::GeoPoint subsatellite_point(const CircularOrbit& orbit,
                                               double t_s);

/// Maximum latitude reached by the ground track (equals inclination for
/// prograde orbits below 90 degrees).
[[nodiscard]] double max_ground_latitude_deg(const CircularOrbit& orbit);

}  // namespace leodivide::orbit
