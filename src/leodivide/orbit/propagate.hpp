#pragma once
// Batch propagation of a constellation: positions of every satellite at a
// sequence of epochs, in ECEF, with sub-satellite points.

#include <vector>

#include "leodivide/orbit/kepler.hpp"

namespace leodivide::orbit {

/// Snapshot of one satellite at one epoch.
struct SatState {
  geo::Vec3 ecef_km;        ///< position in the Earth-fixed frame
  geo::GeoPoint subpoint;   ///< sub-satellite geodetic point
};

/// ECEF position of one satellite at time t since epoch.
[[nodiscard]] geo::Vec3 ecef_position(const CircularOrbit& orbit, double t_s);

/// States of every satellite in `orbits` at time t, written into `out`
/// (resized to match). The Earth-rotation cos/sin pair is computed once for
/// the whole batch; reusing `out` across epochs makes the call
/// allocation-free at steady state.
void propagate_all(const std::vector<CircularOrbit>& orbits, double t_s,
                   std::vector<SatState>& out);

/// States of every satellite in `orbits` at time t.
[[nodiscard]] std::vector<SatState> propagate_all(
    const std::vector<CircularOrbit>& orbits, double t_s);

}  // namespace leodivide::orbit
