#include "leodivide/orbit/propagate.hpp"

#include <cmath>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

geo::Vec3 ecef_position(const CircularOrbit& orbit, double t_s) {
  const geo::Vec3 eci = eci_position(orbit, t_s);
  const double theta = geo::kEarthRotationRadPerSec * t_s;
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  return {eci.x * c + eci.y * s, -eci.x * s + eci.y * c, eci.z};
}

std::vector<SatState> propagate_all(const std::vector<CircularOrbit>& orbits,
                                    double t_s) {
  std::vector<SatState> out;
  out.reserve(orbits.size());
  for (const auto& orbit : orbits) {
    const geo::Vec3 ecef = ecef_position(orbit, t_s);
    out.push_back(SatState{ecef, geo::cartesian_to_spherical(ecef)});
  }
  return out;
}

}  // namespace leodivide::orbit
