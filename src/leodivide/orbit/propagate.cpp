#include "leodivide/orbit/propagate.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "leodivide/geo/angle.hpp"
#include "leodivide/orbit/kernels.hpp"

namespace leodivide::orbit {

geo::Vec3 ecef_position(const CircularOrbit& orbit, double t_s) {
  const geo::Vec3 eci = eci_position(orbit, t_s);
  const double theta = geo::kEarthRotationRadPerSec * t_s;
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  return {eci.x * c + eci.y * s, -eci.x * s + eci.y * c, eci.z};
}

void propagate_all(const std::vector<CircularOrbit>& orbits, double t_s,
                   std::vector<SatState>& out) {
  // One Earth-rotation angle per epoch, not per satellite: every orbit
  // shares t, so cos/sin(theta) are hoisted. The per-satellite trig lives
  // in eci_position (scalar — each orbit has its own phase), but the epoch
  // rotation is applied to fixed-size SoA blocks through the SIMD
  // rotate_about_z kernel, whose per-lane expression is the one from
  // ecef_position verbatim — positions stay bit-identical (golden-tested in
  // tests/test_simd.cpp), and the stack blocks keep the call
  // allocation-free.
  const double theta = geo::kEarthRotationRadPerSec * t_s;
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  out.resize(orbits.size());
  constexpr std::size_t kBlock = 128;
  double eci_x[kBlock];
  double eci_y[kBlock];
  double eci_z[kBlock];
  for (std::size_t base = 0; base < orbits.size(); base += kBlock) {
    const std::size_t m = std::min(kBlock, orbits.size() - base);
    for (std::size_t j = 0; j < m; ++j) {
      const geo::Vec3 eci = eci_position(orbits[base + j], t_s);
      eci_x[j] = eci.x;
      eci_y[j] = eci.y;
      eci_z[j] = eci.z;
    }
    rotate_about_z(eci_x, eci_y, c, s, m, eci_x, eci_y);
    for (std::size_t j = 0; j < m; ++j) {
      const geo::Vec3 ecef{eci_x[j], eci_y[j], eci_z[j]};
      out[base + j] = SatState{ecef, geo::cartesian_to_spherical(ecef)};
    }
  }
}

std::vector<SatState> propagate_all(const std::vector<CircularOrbit>& orbits,
                                    double t_s) {
  std::vector<SatState> out;
  propagate_all(orbits, t_s, out);
  return out;
}

}  // namespace leodivide::orbit
