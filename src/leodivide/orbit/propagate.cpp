#include "leodivide/orbit/propagate.hpp"

#include <cmath>
#include <cstddef>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

geo::Vec3 ecef_position(const CircularOrbit& orbit, double t_s) {
  const geo::Vec3 eci = eci_position(orbit, t_s);
  const double theta = geo::kEarthRotationRadPerSec * t_s;
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  return {eci.x * c + eci.y * s, -eci.x * s + eci.y * c, eci.z};
}

void propagate_all(const std::vector<CircularOrbit>& orbits, double t_s,
                   std::vector<SatState>& out) {
  // One Earth-rotation angle per epoch, not per satellite: every orbit
  // shares t, so cos/sin(theta) are hoisted. The rotation expression is the
  // one from ecef_position verbatim — positions stay bit-identical.
  const double theta = geo::kEarthRotationRadPerSec * t_s;
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  out.resize(orbits.size());
  for (std::size_t i = 0; i < orbits.size(); ++i) {
    const geo::Vec3 eci = eci_position(orbits[i], t_s);
    const geo::Vec3 ecef{eci.x * c + eci.y * s, -eci.x * s + eci.y * c,
                         eci.z};
    out[i] = SatState{ecef, geo::cartesian_to_spherical(ecef)};
  }
}

std::vector<SatState> propagate_all(const std::vector<CircularOrbit>& orbits,
                                    double t_s) {
  std::vector<SatState> out;
  propagate_all(orbits, t_s, out);
  return out;
}

}  // namespace leodivide::orbit
