#include "leodivide/orbit/visibility.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

namespace {

// Elevation of a satellite against a precomputed observer position and
// local "up" radial. Neither depends on the satellite, so the batch queries
// hoist them out of their loops instead of re-deriving both per state.
double elevation_from_observer(const geo::Vec3& obs, const geo::Vec3& up,
                               const geo::Vec3& sat_ecef_km) {
  const geo::Vec3 los = sat_ecef_km - obs;
  const double range = los.norm();
  // leolint:allow(float-eq): exact-zero guard before dividing by range
  if (range == 0.0) return 90.0;
  const double sin_el = los.dot(up) / range;
  return geo::rad2deg(std::asin(std::clamp(sin_el, -1.0, 1.0)));
}

}  // namespace

double elevation_deg(const geo::GeoPoint& ground,
                     const geo::Vec3& sat_ecef_km) {
  const geo::Vec3 obs = geo::spherical_to_cartesian(ground, geo::kEarthRadiusKm);
  return elevation_from_observer(obs, obs.unit(), sat_ecef_km);
}

double slant_range_km(const geo::GeoPoint& ground,
                      const geo::Vec3& sat_ecef_km) {
  const geo::Vec3 obs = geo::spherical_to_cartesian(ground, geo::kEarthRadiusKm);
  return (sat_ecef_km - obs).norm();
}

bool is_visible(const geo::GeoPoint& ground, const geo::Vec3& sat_ecef_km,
                double min_elevation_deg) {
  return elevation_deg(ground, sat_ecef_km) >= min_elevation_deg;
}

std::vector<std::size_t> visible_satellites(const geo::GeoPoint& ground,
                                            const std::vector<SatState>& states,
                                            double min_elevation_deg) {
  const geo::Vec3 obs =
      geo::spherical_to_cartesian(ground, geo::kEarthRadiusKm);
  const geo::Vec3 up = obs.unit();
  std::vector<std::size_t> out;
  out.reserve(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (elevation_from_observer(obs, up, states[i].ecef_km) >=
        min_elevation_deg) {
      out.push_back(i);
    }
  }
  return out;
}

std::size_t count_visible(const geo::GeoPoint& ground,
                          const std::vector<SatState>& states,
                          double min_elevation_deg) {
  const geo::Vec3 obs =
      geo::spherical_to_cartesian(ground, geo::kEarthRadiusKm);
  const geo::Vec3 up = obs.unit();
  std::size_t n = 0;
  for (const auto& s : states) {
    if (elevation_from_observer(obs, up, s.ecef_km) >= min_elevation_deg) ++n;
  }
  return n;
}

}  // namespace leodivide::orbit
