#include "leodivide/orbit/visibility.hpp"

#include <algorithm>
#include <cmath>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

double elevation_deg(const geo::GeoPoint& ground,
                     const geo::Vec3& sat_ecef_km) {
  const geo::Vec3 obs = geo::spherical_to_cartesian(ground, geo::kEarthRadiusKm);
  const geo::Vec3 los = sat_ecef_km - obs;
  const double range = los.norm();
  // leolint:allow(float-eq): exact-zero guard before dividing by range
  if (range == 0.0) return 90.0;
  const geo::Vec3 up = obs.unit();
  const double sin_el = los.dot(up) / range;
  return geo::rad2deg(std::asin(std::clamp(sin_el, -1.0, 1.0)));
}

double slant_range_km(const geo::GeoPoint& ground,
                      const geo::Vec3& sat_ecef_km) {
  const geo::Vec3 obs = geo::spherical_to_cartesian(ground, geo::kEarthRadiusKm);
  return (sat_ecef_km - obs).norm();
}

bool is_visible(const geo::GeoPoint& ground, const geo::Vec3& sat_ecef_km,
                double min_elevation_deg) {
  return elevation_deg(ground, sat_ecef_km) >= min_elevation_deg;
}

std::vector<std::size_t> visible_satellites(const geo::GeoPoint& ground,
                                            const std::vector<SatState>& states,
                                            double min_elevation_deg) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (is_visible(ground, states[i].ecef_km, min_elevation_deg)) {
      out.push_back(i);
    }
  }
  return out;
}

std::size_t count_visible(const geo::GeoPoint& ground,
                          const std::vector<SatState>& states,
                          double min_elevation_deg) {
  std::size_t n = 0;
  for (const auto& s : states) {
    if (is_visible(ground, s.ecef_km, min_elevation_deg)) ++n;
  }
  return n;
}

}  // namespace leodivide::orbit
