#include "leodivide/orbit/footprint.hpp"

#include <cmath>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"
#include "leodivide/geo/greatcircle.hpp"

namespace leodivide::orbit {

double coverage_central_angle_rad(double altitude_km,
                                  double min_elevation_deg) {
  if (altitude_km <= 0.0) {
    throw std::invalid_argument("coverage: altitude must be > 0");
  }
  if (min_elevation_deg < 0.0 || min_elevation_deg >= 90.0) {
    throw std::invalid_argument("coverage: elevation mask outside [0, 90)");
  }
  const double eps = geo::deg2rad(min_elevation_deg);
  const double ratio = geo::kEarthRadiusKm / (geo::kEarthRadiusKm + altitude_km);
  // Standard geometry: psi = acos(ratio * cos eps) - eps.
  return std::acos(ratio * std::cos(eps)) - eps;
}

double footprint_radius_km(double altitude_km, double min_elevation_deg) {
  return geo::kEarthRadiusKm *
         coverage_central_angle_rad(altitude_km, min_elevation_deg);
}

double footprint_area_km2(double altitude_km, double min_elevation_deg) {
  return geo::spherical_cap_area_km2(
      coverage_central_angle_rad(altitude_km, min_elevation_deg));
}

double cells_in_footprint(double altitude_km, double min_elevation_deg,
                          double cell_area_km2) {
  if (cell_area_km2 <= 0.0) {
    throw std::invalid_argument("cells_in_footprint: cell area must be > 0");
  }
  return footprint_area_km2(altitude_km, min_elevation_deg) / cell_area_km2;
}

double edge_nadir_angle_rad(double altitude_km, double min_elevation_deg) {
  const double eps = geo::deg2rad(min_elevation_deg);
  const double ratio = geo::kEarthRadiusKm / (geo::kEarthRadiusKm + altitude_km);
  return std::asin(ratio * std::cos(eps));
}

}  // namespace leodivide::orbit
