#pragma once
// Ground tracks: the path the sub-satellite point traces over time.

#include <vector>

#include "leodivide/orbit/kepler.hpp"

namespace leodivide::orbit {

/// Samples the ground track of `orbit` from t=0 to `duration_s` at
/// `step_s` intervals (inclusive of both endpoints when they align).
[[nodiscard]] std::vector<geo::GeoPoint> ground_track(
    const CircularOrbit& orbit, double duration_s, double step_s);

/// Westward drift of the ground track per orbit [deg] due to Earth rotation
/// (positive value = each successive equator crossing is this many degrees
/// further west).
[[nodiscard]] double nodal_regression_per_orbit_deg(const CircularOrbit& orbit);

}  // namespace leodivide::orbit
