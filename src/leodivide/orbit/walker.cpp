#include "leodivide/orbit/walker.hpp"

#include <sstream>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::orbit {

std::string WalkerShell::to_string() const {
  std::ostringstream os;
  os << inclination_deg << ":" << total_sats() << "/" << planes << "/"
     << phasing << " @ " << altitude_km << "km";
  return os.str();
}

WalkerShell starlink_shell1() noexcept {
  return WalkerShell{53.0, 550.0, 72, 22, 1};
}

std::vector<CircularOrbit> make_constellation(const WalkerShell& shell) {
  if (shell.planes == 0 || shell.sats_per_plane == 0) {
    throw std::invalid_argument("make_constellation: empty shell");
  }
  if (shell.phasing >= shell.planes) {
    throw std::invalid_argument("make_constellation: phasing must be < planes");
  }
  std::vector<CircularOrbit> orbits;
  orbits.reserve(shell.total_sats());
  const double inc = geo::deg2rad(shell.inclination_deg);
  const auto planes = static_cast<double>(shell.planes);
  const auto per_plane = static_cast<double>(shell.sats_per_plane);
  for (std::uint32_t p = 0; p < shell.planes; ++p) {
    const double raan = geo::kTwoPi * static_cast<double>(p) / planes;
    for (std::uint32_t k = 0; k < shell.sats_per_plane; ++k) {
      const double phase =
          geo::kTwoPi * (static_cast<double>(k) / per_plane +
                         static_cast<double>(shell.phasing) *
                             static_cast<double>(p) / (planes * per_plane));
      orbits.push_back(CircularOrbit{shell.altitude_km, inc, raan, phase});
    }
  }
  return orbits;
}

}  // namespace leodivide::orbit
