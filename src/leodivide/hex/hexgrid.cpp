#include "leodivide/hex/hexgrid.hpp"

#include <cmath>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::hex {

namespace {

constexpr double kSqrt3 = 1.7320508075688772;

// Edge length at resolution 5 such that the hex area equals the H3
// resolution-5 mean area: area = (3*sqrt(3)/2) * a^2.
const double kEdgeRes5Km = std::sqrt(kH3Res5AreaKm2 * 2.0 / (3.0 * kSqrt3));

void check_resolution(int resolution) {
  if (resolution < 0 || resolution > kMaxResolution) {
    throw std::out_of_range("hex: resolution outside [0, 15]");
  }
}

}  // namespace

double edge_length_km(int resolution) {
  check_resolution(resolution);
  // Aperture-4 ladder anchored at resolution 5.
  return kEdgeRes5Km * std::pow(2.0, 5 - resolution);
}

double cell_area_km2(int resolution) {
  const double a = edge_length_km(resolution);
  return 1.5 * kSqrt3 * a * a;
}

double global_cell_count(int resolution) {
  return geo::kEarthSurfaceAreaKm2 / cell_area_km2(resolution);
}

HexGrid::HexGrid(const geo::GeoPoint& center) : projection_(center) {}

geo::PlanePoint HexGrid::hex_to_plane(int resolution,
                                      HexCoord h) const noexcept {
  const double a = edge_length_km(resolution);
  return {a * kSqrt3 *
              (static_cast<double>(h.q) + static_cast<double>(h.r) / 2.0),
          a * 1.5 * static_cast<double>(h.r)};
}

FractionalHex HexGrid::plane_to_hex(int resolution,
                                    geo::PlanePoint p) const noexcept {
  const double a = edge_length_km(resolution);
  return {(kSqrt3 / 3.0 * p.x - p.y / 3.0) / a, (2.0 / 3.0 * p.y) / a};
}

CellId HexGrid::cell_of(const geo::GeoPoint& p, int resolution) const {
  check_resolution(resolution);
  const geo::PlanePoint q = projection_.forward(p);
  return CellId(resolution, hex_round(plane_to_hex(resolution, q)));
}

geo::GeoPoint HexGrid::center_of(CellId id) const {
  if (!id.valid()) throw std::invalid_argument("center_of: invalid cell");
  return projection_.inverse(hex_to_plane(id.resolution(), id.coord()));
}

std::array<geo::GeoPoint, 6> HexGrid::boundary_of(CellId id) const {
  if (!id.valid()) throw std::invalid_argument("boundary_of: invalid cell");
  const double a = edge_length_km(id.resolution());
  const geo::PlanePoint c = hex_to_plane(id.resolution(), id.coord());
  std::array<geo::GeoPoint, 6> out;
  for (int k = 0; k < 6; ++k) {
    // Pointy-top corners at 30 + 60*k degrees.
    const double ang = geo::deg2rad(60.0 * k + 30.0);
    out[static_cast<std::size_t>(k)] = projection_.inverse(
        {c.x + a * std::cos(ang), c.y + a * std::sin(ang)});
  }
  return out;
}

CellId HexGrid::parent_of(CellId id, int parent_res) const {
  if (!id.valid()) throw std::invalid_argument("parent_of: invalid cell");
  if (parent_res >= id.resolution() || parent_res < 0) {
    throw std::invalid_argument("parent_of: parent_res must be coarser");
  }
  return cell_of(center_of(id), parent_res);
}

std::vector<CellId> HexGrid::children_of(CellId id, int child_res) const {
  if (!id.valid()) throw std::invalid_argument("children_of: invalid cell");
  if (child_res <= id.resolution() || child_res > kMaxResolution) {
    throw std::invalid_argument("children_of: child_res must be finer");
  }
  // Candidate children: all fine cells within a generous hex radius of the
  // fine cell under this cell's center. With aperture 4, a cell at depth d
  // spans about 2^d fine cells across; radius 2^d + 2 covers the worst case.
  const int depth = child_res - id.resolution();
  const auto radius = static_cast<std::int32_t>((1 << depth) + 2);
  const CellId anchor = cell_of(center_of(id), child_res);
  const HexCoord base = anchor.coord();
  std::vector<CellId> out;
  for (std::int32_t dq = -radius; dq <= radius; ++dq) {
    for (std::int32_t dr = std::max(-radius, -dq - radius);
         dr <= std::min(radius, -dq + radius); ++dr) {
      const CellId candidate(child_res, base + HexCoord{dq, dr});
      if (parent_of(candidate, id.resolution()) == id) {
        out.push_back(candidate);
      }
    }
  }
  return out;
}

}  // namespace leodivide::hex
