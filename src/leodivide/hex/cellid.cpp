#include "leodivide/hex/cellid.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace leodivide::hex {

namespace {

constexpr std::uint32_t kCoordMask = (1U << 30) - 1;
constexpr std::int32_t kCoordLimit = 1 << 29;

constexpr std::uint32_t zigzag(std::int32_t v) noexcept {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

constexpr std::int32_t unzigzag(std::uint32_t u) noexcept {
  return static_cast<std::int32_t>((u >> 1) ^ (~(u & 1) + 1));
}

}  // namespace

CellId::CellId(int resolution, HexCoord coord) : bits_(0) {
  if (resolution < 0 || resolution > kMaxResolution) {
    throw std::out_of_range("CellId: resolution outside [0, 15]");
  }
  if (coord.q <= -kCoordLimit || coord.q >= kCoordLimit ||
      coord.r <= -kCoordLimit || coord.r >= kCoordLimit) {
    throw std::out_of_range("CellId: coordinate exceeds packing range");
  }
  bits_ = (static_cast<std::uint64_t>(resolution) << 60) |
          (static_cast<std::uint64_t>(zigzag(coord.q) & kCoordMask) << 30) |
          static_cast<std::uint64_t>(zigzag(coord.r) & kCoordMask);
}

CellId CellId::from_bits(std::uint64_t bits) {
  if (bits == kInvalidBits) return invalid();
  const int res = static_cast<int>(bits >> 60);
  if (res > kMaxResolution) {
    throw std::invalid_argument("CellId::from_bits: bad resolution nibble");
  }
  return CellId(bits);
}

int CellId::resolution() const noexcept {
  return valid() ? static_cast<int>(bits_ >> 60) : -1;
}

HexCoord CellId::coord() const noexcept {
  const auto qz = static_cast<std::uint32_t>((bits_ >> 30) & kCoordMask);
  const auto rz = static_cast<std::uint32_t>(bits_ & kCoordMask);
  return {unzigzag(qz), unzigzag(rz)};
}

std::string CellId::to_string() const {
  std::ostringstream os;
  os << std::hex << bits_;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const CellId& id) {
  if (!id.valid()) return os << "cell(invalid)";
  const HexCoord c = id.coord();
  return os << "cell(r" << id.resolution() << ", " << c.q << ", " << c.r
            << ")";
}

}  // namespace leodivide::hex
