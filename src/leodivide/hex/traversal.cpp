#include "leodivide/hex/traversal.hpp"

#include <stdexcept>

namespace leodivide::hex {

namespace {
void require_valid(CellId id) {
  if (!id.valid()) throw std::invalid_argument("hex traversal: invalid cell");
}
}  // namespace

std::vector<CellId> neighbors(CellId id) {
  require_valid(id);
  std::vector<CellId> out;
  out.reserve(6);
  for (const HexCoord& d : hex_directions()) {
    out.emplace_back(id.resolution(), id.coord() + d);
  }
  return out;
}

std::vector<CellId> ring(CellId id, int k) {
  require_valid(id);
  if (k < 0) throw std::invalid_argument("ring: k must be >= 0");
  if (k == 0) return {id};
  std::vector<CellId> out;
  out.reserve(static_cast<std::size_t>(6 * k));
  // Walk to the ring start (k steps in direction 4), then trace 6 sides.
  HexCoord h = id.coord();
  for (int i = 0; i < k; ++i) h = h + hex_directions()[4];
  for (int side = 0; side < 6; ++side) {
    for (int step = 0; step < k; ++step) {
      out.emplace_back(id.resolution(), h);
      h = h + hex_directions()[static_cast<std::size_t>(side)];
    }
  }
  return out;
}

std::vector<CellId> disk(CellId id, int k) {
  require_valid(id);
  if (k < 0) throw std::invalid_argument("disk: k must be >= 0");
  std::vector<CellId> out;
  out.reserve(static_cast<std::size_t>(1 + 3 * k * (k + 1)));
  const HexCoord c = id.coord();
  for (std::int32_t dq = -k; dq <= k; ++dq) {
    const std::int32_t lo = std::max(-k, -dq - k);
    const std::int32_t hi = std::min(k, -dq + k);
    for (std::int32_t dr = lo; dr <= hi; ++dr) {
      out.emplace_back(id.resolution(), c + HexCoord{dq, dr});
    }
  }
  return out;
}

int grid_distance(CellId a, CellId b) {
  require_valid(a);
  require_valid(b);
  if (a.resolution() != b.resolution()) {
    throw std::invalid_argument("grid_distance: resolution mismatch");
  }
  return hex_distance(a.coord(), b.coord());
}

std::vector<CellId> line(CellId a, CellId b) {
  const int n = grid_distance(a, b);
  std::vector<CellId> out;
  out.reserve(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    const double t = n == 0 ? 0.0 : static_cast<double>(i) / n;
    out.emplace_back(a.resolution(), hex_round(hex_lerp(a.coord(), b.coord(), t)));
  }
  return out;
}

}  // namespace leodivide::hex
