#pragma once
// Axial/cube hexagon coordinates on a plane (pointy-top orientation).
// The hex index builds on these: cells at a given resolution are axial
// integer coordinates on a projected plane.

#include <array>
#include <cstdint>
#include <iosfwd>

namespace leodivide::hex {

/// Axial hexagon coordinate. The implicit cube coordinate is
/// (q, r, s = -q-r); all cube identities hold.
struct HexCoord {
  std::int32_t q = 0;
  std::int32_t r = 0;

  [[nodiscard]] constexpr std::int32_t s() const noexcept { return -q - r; }

  friend constexpr HexCoord operator+(HexCoord a, HexCoord b) noexcept {
    return {a.q + b.q, a.r + b.r};
  }
  friend constexpr HexCoord operator-(HexCoord a, HexCoord b) noexcept {
    return {a.q - b.q, a.r - b.r};
  }
  friend bool operator==(const HexCoord&, const HexCoord&) = default;
};

std::ostream& operator<<(std::ostream& os, const HexCoord& h);

/// The six axial direction vectors, in counter-clockwise order starting
/// from "east".
[[nodiscard]] const std::array<HexCoord, 6>& hex_directions() noexcept;

/// Hex grid (Manhattan-like) distance between two cells.
[[nodiscard]] std::int32_t hex_distance(HexCoord a, HexCoord b) noexcept;

/// Fractional axial coordinate, produced when mapping a plane point into
/// hex space before rounding.
struct FractionalHex {
  double q = 0.0;
  double r = 0.0;
};

/// Rounds a fractional hex coordinate to the nearest cell using cube
/// rounding (guarantees the result is the containing hexagon).
[[nodiscard]] HexCoord hex_round(const FractionalHex& f) noexcept;

/// Linear interpolation in hex space; used by hex line drawing.
[[nodiscard]] FractionalHex hex_lerp(HexCoord a, HexCoord b, double t) noexcept;

}  // namespace leodivide::hex
