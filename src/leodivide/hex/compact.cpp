#include "leodivide/hex/compact.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace leodivide::hex {

std::vector<CellId> compact(const HexGrid& grid, std::vector<CellId> cells,
                            int min_resolution) {
  if (cells.empty()) return {};
  const int res = cells.front().resolution();
  for (const CellId c : cells) {
    if (!c.valid() || c.resolution() != res) {
      throw std::invalid_argument("compact: invalid or mixed-resolution cells");
    }
  }
  if (min_resolution < 0 || min_resolution > res) {
    throw std::invalid_argument("compact: bad min_resolution");
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());

  std::vector<CellId> result;
  std::vector<CellId> level = std::move(cells);
  int level_res = res;
  while (level_res > min_resolution && !level.empty()) {
    const std::set<CellId> present(level.begin(), level.end());
    std::map<CellId, std::vector<CellId>> by_parent;
    for (const CellId c : level) {
      by_parent[grid.parent_of(c, level_res - 1)].push_back(c);
    }
    std::vector<CellId> next;
    for (const auto& [parent, members] : by_parent) {
      // The parent replaces its members only when every child of the
      // parent is present.
      const auto children = grid.children_of(parent, level_res);
      const bool complete =
          !children.empty() &&
          std::all_of(children.begin(), children.end(), [&](CellId ch) {
            return present.count(ch) > 0;
          });
      if (complete) {
        next.push_back(parent);
        // Children not in `members` (center in a sibling parent) are kept
        // by their own parent group; only exact members are replaced.
        for (const CellId ch : children) {
          if (std::find(members.begin(), members.end(), ch) ==
              members.end()) {
            // A child whose own parent differs would be double-covered;
            // with center-based parents children_of and parent_of agree,
            // so this cannot happen — guard anyway.
            result.push_back(ch);
          }
        }
      } else {
        result.insert(result.end(), members.begin(), members.end());
      }
    }
    level = std::move(next);
    --level_res;
  }
  result.insert(result.end(), level.begin(), level.end());
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<CellId> uncompact(const HexGrid& grid,
                              const std::vector<CellId>& cells,
                              int resolution) {
  std::vector<CellId> out;
  for (const CellId c : cells) {
    if (!c.valid() || c.resolution() > resolution) {
      throw std::invalid_argument("uncompact: cell finer than target");
    }
    if (c.resolution() == resolution) {
      out.push_back(c);
      continue;
    }
    // Expand one level at a time. The grid's aperture-4 hierarchy is
    // center-based rather than strictly nested, so the multi-level
    // parent/child relation only composes through its one-level steps —
    // the same steps compact() groups by, making uncompact its exact
    // inverse.
    std::vector<CellId> frontier{c};
    for (int res = c.resolution(); res < resolution; ++res) {
      std::vector<CellId> next;
      for (const CellId f : frontier) {
        const auto children = grid.children_of(f, res + 1);
        next.insert(next.end(), children.begin(), children.end());
      }
      frontier = std::move(next);
    }
    out.insert(out.end(), frontier.begin(), frontier.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace leodivide::hex
