#pragma once
// The hex grid: a hierarchical, H3-style hexagonal tiling of a region of the
// Earth. Starlink's terrestrial planning cells are H3 cells (Neinavaie et
// al.; Puchol), and the paper aggregates broadband-serviceable locations into
// these cells. We reproduce the same API surface over a planar-projected
// tiling: a region of interest is projected with an azimuthal equidistant
// projection (distance-true from the region center), tiled with pointy-top
// hexagons, and indexed with (resolution, axial coordinate) CellIds.
//
// Resolutions follow an aperture-4 ladder (each step halves the edge length,
// quarters the area), calibrated so that resolution 5 matches H3 resolution
// 5's mean cell area of 252.9 km^2 — the resolution prior work identifies as
// Starlink's service-cell size.

#include <array>
#include <vector>

#include "leodivide/geo/geopoint.hpp"
#include "leodivide/geo/projection.hpp"
#include "leodivide/hex/cellid.hpp"

namespace leodivide::hex {

/// Mean H3 resolution-5 hexagon area [km^2]; our grid calibrates to this.
inline constexpr double kH3Res5AreaKm2 = 252.9033645;

/// The Starlink service-cell resolution.
inline constexpr int kServiceCellResolution = 5;

/// Hexagon edge length [km] at a resolution of this grid's ladder.
[[nodiscard]] double edge_length_km(int resolution);

/// Hexagon area [km^2] at a resolution (uniform across the projected plane).
[[nodiscard]] double cell_area_km2(int resolution);

/// Number of cells of this resolution needed to tile the whole Earth —
/// the "global cell count" the constellation-sizing model divides by.
[[nodiscard]] double global_cell_count(int resolution);

/// A hex tiling of the plane around a projection center. Typical use indexes
/// the US with the grid centered on CONUS.
class HexGrid {
 public:
  /// Creates a grid whose projection is centered at `center`. Defaults to
  /// the CONUS centroid so US analyses share a canonical grid.
  explicit HexGrid(const geo::GeoPoint& center = {39.5, -98.35});

  /// Cell containing a geographic point at the given resolution.
  [[nodiscard]] CellId cell_of(const geo::GeoPoint& p, int resolution) const;

  /// Center of a cell.
  [[nodiscard]] geo::GeoPoint center_of(CellId id) const;

  /// The six boundary vertices of a cell, counter-clockwise.
  [[nodiscard]] std::array<geo::GeoPoint, 6> boundary_of(CellId id) const;

  /// Parent cell at `parent_res` (< id.resolution()): the coarser cell
  /// containing this cell's center.
  [[nodiscard]] CellId parent_of(CellId id, int parent_res) const;

  /// Children at `child_res` (> id.resolution()): every finer cell whose
  /// center lies within distance of this cell's own center consistent with
  /// parent_of (i.e. parent_of(child) == id).
  [[nodiscard]] std::vector<CellId> children_of(CellId id,
                                                int child_res) const;

  [[nodiscard]] const geo::GeoPoint& center() const noexcept {
    return projection_.center();
  }
  [[nodiscard]] const geo::AzimuthalEquidistant& projection() const noexcept {
    return projection_;
  }

 private:
  [[nodiscard]] geo::PlanePoint hex_to_plane(int resolution,
                                             HexCoord h) const noexcept;
  [[nodiscard]] FractionalHex plane_to_hex(int resolution,
                                           geo::PlanePoint p) const noexcept;

  geo::AzimuthalEquidistant projection_;
};

}  // namespace leodivide::hex
