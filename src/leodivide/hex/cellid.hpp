#pragma once
// 64-bit packed cell identifiers, in the spirit of H3 indexes: a resolution
// plus the cell's axial coordinate, packed so ids are cheap to hash, compare
// and store in flat maps keyed by cell.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "leodivide/hex/hexcoord.hpp"

namespace leodivide::hex {

/// Maximum supported resolution (0..15, like H3).
inline constexpr int kMaxResolution = 15;

/// Packed cell id: bits [60..63] resolution, [30..59] zig-zag encoded q,
/// [0..29] zig-zag encoded r. The all-ones value is reserved as invalid.
class CellId {
 public:
  constexpr CellId() noexcept : bits_(kInvalidBits) {}

  /// Packs a resolution and axial coordinate. Throws std::out_of_range if
  /// the resolution or coordinates exceed the representable range
  /// (|q|,|r| < 2^29).
  CellId(int resolution, HexCoord coord);

  /// Reconstructs an id from raw bits (e.g. read back from a CSV). The
  /// reserved all-ones pattern decodes to the invalid id.
  [[nodiscard]] static CellId from_bits(std::uint64_t bits);

  [[nodiscard]] static constexpr CellId invalid() noexcept { return {}; }

  [[nodiscard]] bool valid() const noexcept { return bits_ != kInvalidBits; }
  [[nodiscard]] int resolution() const noexcept;
  [[nodiscard]] HexCoord coord() const noexcept;
  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }

  /// Hex-string rendering ("8a2b..."-style), handy for logs and CSV.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const CellId&, const CellId&) = default;
  friend auto operator<=>(const CellId&, const CellId&) = default;

 private:
  static constexpr std::uint64_t kInvalidBits = ~0ULL;
  explicit constexpr CellId(std::uint64_t bits) noexcept : bits_(bits) {}
  std::uint64_t bits_;
};

std::ostream& operator<<(std::ostream& os, const CellId& id);

}  // namespace leodivide::hex

template <>
struct std::hash<leodivide::hex::CellId> {
  std::size_t operator()(const leodivide::hex::CellId& id) const noexcept {
    // SplitMix-style finalizer over the packed bits.
    std::uint64_t z = id.bits() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
