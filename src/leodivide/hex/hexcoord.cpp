#include "leodivide/hex/hexcoord.hpp"

#include <cmath>
#include <cstdlib>
#include <ostream>

namespace leodivide::hex {

std::ostream& operator<<(std::ostream& os, const HexCoord& h) {
  return os << "hex(" << h.q << ", " << h.r << ")";
}

const std::array<HexCoord, 6>& hex_directions() noexcept {
  static const std::array<HexCoord, 6> dirs{{{+1, 0},
                                             {+1, -1},
                                             {0, -1},
                                             {-1, 0},
                                             {-1, +1},
                                             {0, +1}}};
  return dirs;
}

std::int32_t hex_distance(HexCoord a, HexCoord b) noexcept {
  const HexCoord d = a - b;
  return (std::abs(d.q) + std::abs(d.r) + std::abs(d.s())) / 2;
}

HexCoord hex_round(const FractionalHex& f) noexcept {
  const double fs = -f.q - f.r;
  double q = std::round(f.q);
  double r = std::round(f.r);
  const double s = std::round(fs);
  const double dq = std::abs(q - f.q);
  const double dr = std::abs(r - f.r);
  const double ds = std::abs(s - fs);
  if (dq > dr && dq > ds) {
    q = -r - s;
  } else if (dr > ds) {
    r = -q - s;
  }
  return {static_cast<std::int32_t>(q), static_cast<std::int32_t>(r)};
}

FractionalHex hex_lerp(HexCoord a, HexCoord b, double t) noexcept {
  return {static_cast<double>(a.q) + (static_cast<double>(b.q - a.q)) * t,
          static_cast<double>(a.r) + (static_cast<double>(b.r - a.r)) * t};
}

}  // namespace leodivide::hex
