#pragma once
// Grid traversal: neighbors, rings, filled disks (k-rings), lines and
// distances over CellIds at a fixed resolution.

#include <vector>

#include "leodivide/hex/cellid.hpp"

namespace leodivide::hex {

/// The six adjacent cells, counter-clockwise from "east".
[[nodiscard]] std::vector<CellId> neighbors(CellId id);

/// The cells at exactly hex distance k (the "ring"); k = 0 yields {id}.
[[nodiscard]] std::vector<CellId> ring(CellId id, int k);

/// All cells within hex distance k, center included (the "filled disk",
/// H3's gridDisk / kRing). Size is 1 + 3k(k+1).
[[nodiscard]] std::vector<CellId> disk(CellId id, int k);

/// Hex distance between two cells of the same resolution; throws
/// std::invalid_argument on resolution mismatch or invalid ids.
[[nodiscard]] int grid_distance(CellId a, CellId b);

/// Cells forming a straight hex line from a to b inclusive.
[[nodiscard]] std::vector<CellId> line(CellId a, CellId b);

}  // namespace leodivide::hex
