#pragma once
// Multi-resolution cell-set compression (H3's compact/uncompact): replace
// any complete sibling group of fine cells with their common parent. Used
// to store large coverage regions (e.g. a constellation's serviceable
// area) in far fewer cells.

#include <vector>

#include "leodivide/hex/cellid.hpp"
#include "leodivide/hex/hexgrid.hpp"

namespace leodivide::hex {

/// Compacts a set of same-resolution cells: any parent (at the next
/// coarser resolution) whose children are ALL present is emitted instead
/// of the children, recursively up to `min_resolution`. Cells without a
/// complete sibling group pass through unchanged. Input duplicates are
/// removed. Throws std::invalid_argument on mixed resolutions or invalid
/// ids.
[[nodiscard]] std::vector<CellId> compact(const HexGrid& grid,
                                          std::vector<CellId> cells,
                                          int min_resolution = 0);

/// Expands a compacted set back to uniform `resolution` cells. Cells
/// already at `resolution` pass through; coarser cells expand to their
/// descendants. Throws std::invalid_argument if any cell is finer than
/// `resolution`.
[[nodiscard]] std::vector<CellId> uncompact(const HexGrid& grid,
                                            const std::vector<CellId>& cells,
                                            int resolution);

}  // namespace leodivide::hex
