#include "leodivide/hex/polyfill.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>

#include "leodivide/hex/traversal.hpp"
#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/runtime/map_reduce.hpp"

namespace leodivide::hex {

namespace {

// Scans an axial-coordinate window that covers the box's projected extent
// and keeps cells whose centers satisfy `inside`. The window is split into
// contiguous q-column blocks across the executor; each shard emits its
// cells in (q, r) scan order and shards concatenate in q order, so the
// result equals the serial scan exactly.
std::vector<CellId> scan(
    const HexGrid& grid, const geo::BoundingBox& box, int resolution,
    const std::function<bool(const geo::GeoPoint&)>& inside,
    runtime::Executor& executor) {
  const obs::Span span("hex.polyfill");
  // Project the box corners plus edge midpoints to bound the axial window.
  std::vector<geo::GeoPoint> probes{
      {box.lat_min, box.lon_min}, {box.lat_min, box.lon_max},
      {box.lat_max, box.lon_min}, {box.lat_max, box.lon_max},
      {box.lat_min, (box.lon_min + box.lon_max) / 2},
      {box.lat_max, (box.lon_min + box.lon_max) / 2},
      {(box.lat_min + box.lat_max) / 2, box.lon_min},
      {(box.lat_min + box.lat_max) / 2, box.lon_max}};
  std::int32_t q_lo = INT32_MAX, q_hi = INT32_MIN;
  std::int32_t r_lo = INT32_MAX, r_hi = INT32_MIN;
  for (const auto& p : probes) {
    const HexCoord h = grid.cell_of(p, resolution).coord();
    q_lo = std::min(q_lo, h.q);
    q_hi = std::max(q_hi, h.q);
    r_lo = std::min(r_lo, h.r);
    r_hi = std::max(r_hi, h.r);
  }
  // Pad by one cell: centers near edges may round outward.
  --q_lo; ++q_hi; --r_lo; ++r_hi;
  const auto columns =
      static_cast<std::size_t>(static_cast<std::int64_t>(q_hi) - q_lo + 1);
  auto cells = runtime::map_reduce<std::vector<CellId>>(
      executor, 0, columns,
      // leolint:allow(parallel-capture): inside is a const std::function& parameter — read-only; the textual const scanner cannot see through its parenthesized signature
      [q_lo, r_lo, r_hi, resolution, &grid, &inside](
          std::vector<CellId>& shard, std::size_t lo, std::size_t hi,
          std::size_t) {
        for (std::size_t c = lo; c < hi; ++c) {
          const auto q = static_cast<std::int32_t>(q_lo + static_cast<std::int64_t>(c));
          for (std::int32_t r = r_lo; r <= r_hi; ++r) {
            const CellId id(resolution, HexCoord{q, r});
            if (inside(grid.center_of(id))) shard.push_back(id);
          }
        }
      },
      [](std::vector<CellId>& into, std::vector<CellId>&& from) {
        into.insert(into.end(), std::make_move_iterator(from.begin()),
                    std::make_move_iterator(from.end()));
      });
  if (obs::metrics_enabled()) {
    static obs::Counter& kept =
        obs::registry().counter("hex.polyfill.cells_kept");
    static obs::Counter& scanned =
        obs::registry().counter("hex.polyfill.cells_scanned");
    kept.add(cells.size());
    scanned.add(columns *
                static_cast<std::size_t>(static_cast<std::int64_t>(r_hi) -
                                         r_lo + 1));
  }
  return cells;
}

}  // namespace

std::vector<CellId> polyfill(const HexGrid& grid, const geo::Polygon& poly,
                             int resolution, runtime::Executor& executor) {
  return scan(grid, poly.bbox(), resolution,
              [&poly](const geo::GeoPoint& p) { return poly.contains(p); },
              executor);
}

std::vector<CellId> polyfill(const HexGrid& grid, const geo::BoundingBox& box,
                             int resolution, runtime::Executor& executor) {
  return scan(grid, box, resolution,
              [&box](const geo::GeoPoint& p) { return box.contains(p); },
              executor);
}

std::vector<CellId> polyfill(const HexGrid& grid, const geo::Polygon& poly,
                             int resolution) {
  return polyfill(grid, poly, resolution, runtime::global_executor());
}

std::vector<CellId> polyfill(const HexGrid& grid, const geo::BoundingBox& box,
                             int resolution) {
  return polyfill(grid, box, resolution, runtime::global_executor());
}

}  // namespace leodivide::hex
