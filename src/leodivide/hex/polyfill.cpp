#include "leodivide/hex/polyfill.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>

#include "leodivide/hex/traversal.hpp"

namespace leodivide::hex {

namespace {

// Scans an axial-coordinate window that covers the box's projected extent
// and keeps cells whose centers satisfy `inside`.
std::vector<CellId> scan(
    const HexGrid& grid, const geo::BoundingBox& box, int resolution,
    const std::function<bool(const geo::GeoPoint&)>& inside) {
  // Project the box corners plus edge midpoints to bound the axial window.
  std::vector<geo::GeoPoint> probes{
      {box.lat_min, box.lon_min}, {box.lat_min, box.lon_max},
      {box.lat_max, box.lon_min}, {box.lat_max, box.lon_max},
      {box.lat_min, (box.lon_min + box.lon_max) / 2},
      {box.lat_max, (box.lon_min + box.lon_max) / 2},
      {(box.lat_min + box.lat_max) / 2, box.lon_min},
      {(box.lat_min + box.lat_max) / 2, box.lon_max}};
  std::int32_t q_lo = INT32_MAX, q_hi = INT32_MIN;
  std::int32_t r_lo = INT32_MAX, r_hi = INT32_MIN;
  for (const auto& p : probes) {
    const HexCoord h = grid.cell_of(p, resolution).coord();
    q_lo = std::min(q_lo, h.q);
    q_hi = std::max(q_hi, h.q);
    r_lo = std::min(r_lo, h.r);
    r_hi = std::max(r_hi, h.r);
  }
  // Pad by one cell: centers near edges may round outward.
  --q_lo; ++q_hi; --r_lo; ++r_hi;
  std::vector<CellId> out;
  for (std::int32_t q = q_lo; q <= q_hi; ++q) {
    for (std::int32_t r = r_lo; r <= r_hi; ++r) {
      const CellId id(resolution, HexCoord{q, r});
      if (inside(grid.center_of(id))) out.push_back(id);
    }
  }
  return out;
}

}  // namespace

std::vector<CellId> polyfill(const HexGrid& grid, const geo::Polygon& poly,
                             int resolution) {
  return scan(grid, poly.bbox(), resolution,
              [&poly](const geo::GeoPoint& p) { return poly.contains(p); });
}

std::vector<CellId> polyfill(const HexGrid& grid, const geo::BoundingBox& box,
                             int resolution) {
  return scan(grid, box, resolution,
              [&box](const geo::GeoPoint& p) { return box.contains(p); });
}

}  // namespace leodivide::hex
