#pragma once
// Polyfill: enumerate the cells of a resolution whose centers fall inside a
// polygon or bounding box (H3's polygonToCells center-containment mode).

#include <vector>

#include "leodivide/geo/bbox.hpp"
#include "leodivide/geo/polygon.hpp"
#include "leodivide/hex/cellid.hpp"
#include "leodivide/hex/hexgrid.hpp"

namespace leodivide::runtime {
class Executor;
}

namespace leodivide::hex {

/// All cells at `resolution` whose centers lie inside the polygon. The
/// candidate axial window is scanned in parallel over `executor`, one
/// contiguous block of q-columns per shard, with shards concatenated in
/// order — the output sequence is identical for every thread count.
[[nodiscard]] std::vector<CellId> polyfill(const HexGrid& grid,
                                           const geo::Polygon& poly,
                                           int resolution,
                                           runtime::Executor& executor);

/// All cells at `resolution` whose centers lie inside the bounding box.
[[nodiscard]] std::vector<CellId> polyfill(const HexGrid& grid,
                                           const geo::BoundingBox& box,
                                           int resolution,
                                           runtime::Executor& executor);

/// Overloads on the process-global executor (LEODIVIDE_THREADS).
[[nodiscard]] std::vector<CellId> polyfill(const HexGrid& grid,
                                           const geo::Polygon& poly,
                                           int resolution);
[[nodiscard]] std::vector<CellId> polyfill(const HexGrid& grid,
                                           const geo::BoundingBox& box,
                                           int resolution);

}  // namespace leodivide::hex
