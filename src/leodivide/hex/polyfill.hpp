#pragma once
// Polyfill: enumerate the cells of a resolution whose centers fall inside a
// polygon or bounding box (H3's polygonToCells center-containment mode).

#include <vector>

#include "leodivide/geo/bbox.hpp"
#include "leodivide/geo/polygon.hpp"
#include "leodivide/hex/cellid.hpp"
#include "leodivide/hex/hexgrid.hpp"

namespace leodivide::hex {

/// All cells at `resolution` whose centers lie inside the polygon.
[[nodiscard]] std::vector<CellId> polyfill(const HexGrid& grid,
                                           const geo::Polygon& poly,
                                           int resolution);

/// All cells at `resolution` whose centers lie inside the bounding box.
[[nodiscard]] std::vector<CellId> polyfill(const HexGrid& grid,
                                           const geo::BoundingBox& box,
                                           int resolution);

}  // namespace leodivide::hex
