#pragma once
// Deterministic RNG splitting for parallel generation. A shard (or any
// stable entity index) gets its own statistically-independent seed derived
// from the global seed by SplitMix64, so generated output depends only on
// (seed, shard) — never on thread count or scheduling order.

#include <cstdint>

#include "leodivide/stats/rng.hpp"

namespace leodivide::runtime {

/// Independent per-shard seed: one SplitMix64 step over a combination of
/// the global seed and the shard index. Deterministic and collision-
/// resistant across shards (SplitMix64 is a bijective finalizer).
[[nodiscard]] inline std::uint64_t split_seed(std::uint64_t seed,
                                              std::uint64_t shard) noexcept {
  stats::SplitMix64 mixer(seed ^
                          (shard + 1) * 0x9e3779b97f4a7c15ULL);
  return mixer();
}

}  // namespace leodivide::runtime
