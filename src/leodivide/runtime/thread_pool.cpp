#include "leodivide/runtime/thread_pool.hpp"

#include <exception>
#include <utility>

#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"

namespace leodivide::runtime {

// Shared state of one run_tasks batch. Lives on the caller's stack; workers
// never touch it after the final remaining-count decrement they perform
// under the batch mutex, so stack lifetime is safe.
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* task = nullptr;
  std::mutex m;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::exception_ptr error;
  std::size_t error_index = 0;
  std::uint64_t enqueue_ns = 0;  ///< set only while observability is on
};

namespace {

// True while the current thread is executing a pool task (any pool). Set by
// run_one around the task body so a nested run_tasks can detect re-entrancy
// and run its batch inline instead of enqueuing behind unrelated work —
// helping blindly from inside a task can adopt entire foreign batches,
// growing the stack without bound and serialising behind long tasks.
thread_local bool tl_in_pool_task = false;

// Observability slow path: queue-wait accounting plus a per-worker span
// around the task body. Runs the task exactly like the fast path — spans
// only read the clock and append to thread-local buffers, so the batch
// result is untouched.
void run_task_instrumented(const std::function<void(std::size_t)>& task,
                           std::uint64_t enqueue_ns, std::size_t index) {
  if (obs::metrics_enabled() && enqueue_ns != 0) {
    static obs::Histogram& queue_wait =
        obs::registry().histogram("runtime.queue_wait_us");
    const std::uint64_t now = obs::now_ns();
    queue_wait.record_always_us(now > enqueue_ns ? (now - enqueue_ns) / 1000
                                                 : 0);
  }
  obs::Span span("runtime.task");
  task(index);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads < 1 ? 1 : threads;
  // The run_tasks caller always helps drain the queue, so n-way concurrency
  // needs n - 1 pool workers; ThreadPool(1) starts none and runs batches
  // inline on the caller in index order.
  workers_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::concurrency() const noexcept {
  return workers_.size() + 1;
}

void ThreadPool::run_one(Batch& batch, std::size_t index) {
  const bool outer = tl_in_pool_task;
  tl_in_pool_task = true;
  try {
    if (obs::observability_enabled()) [[unlikely]] {
      run_task_instrumented(*batch.task, batch.enqueue_ns, index);
    } else {
      (*batch.task)(index);
    }
    tl_in_pool_task = outer;
    std::lock_guard<std::mutex> lk(batch.m);
    if (--batch.remaining == 0) batch.done.notify_all();
  } catch (...) {
    tl_in_pool_task = outer;
    std::lock_guard<std::mutex> lk(batch.m);
    if (!batch.error || index < batch.error_index) {
      batch.error = std::current_exception();
      batch.error_index = index;
    }
    if (--batch.remaining == 0) batch.done.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::pair<Batch*, std::size_t> item;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      work_ready_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      item = queue_.front();
      queue_.pop_front();
    }
    run_one(*item.first, item.second);
  }
}

bool ThreadPool::inside_pool_task() noexcept { return tl_in_pool_task; }

void ThreadPool::run_tasks(std::size_t n,
                           const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (tl_in_pool_task) {
    // Re-entrant call from inside a pool task: run the nested batch inline
    // on this thread, in index order with serial semantics (the first throw
    // propagates, which is by construction the lowest-indexed one). This
    // keeps nested parallel_for calls deadlock-free and bounds the stack —
    // the old path enqueued the chunks and helped drain the shared queue,
    // which could pick up whole unrelated batches before its own.
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }
  Batch batch;
  batch.task = &task;
  batch.remaining = n;
  if (obs::observability_enabled()) [[unlikely]] {
    batch.enqueue_ns = obs::now_ns();
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    for (std::size_t i = 0; i < n; ++i) queue_.emplace_back(&batch, i);
  }
  if (!workers_.empty() && n > 1) work_ready_.notify_all();

  // Help drain the queue until this batch completes. Helping (rather than
  // blocking immediately) keeps nested run_tasks calls from worker tasks
  // deadlock-free and makes the caller a full participant, so a pool of
  // concurrency k really applies k threads to the batch.
  for (;;) {
    {
      std::unique_lock<std::mutex> bl(batch.m);
      if (batch.remaining == 0) break;
    }
    std::pair<Batch*, std::size_t> item{nullptr, 0};
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!queue_.empty()) {
        item = queue_.front();
        queue_.pop_front();
      }
    }
    if (item.first != nullptr) {
      run_one(*item.first, item.second);
      continue;
    }
    std::unique_lock<std::mutex> bl(batch.m);
    batch.done.wait(bl, [&batch] { return batch.remaining == 0; });
    break;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace leodivide::runtime
