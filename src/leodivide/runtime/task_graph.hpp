#pragma once
// Dependency-graph scheduler on top of the Executor batch contract. Stages
// that today run strictly sequentially (with parallel_for only inside each)
// become nodes of a DAG, so independent work — operators in market/, regions
// in serve/, scenario chains in the pipeline benches — overlaps instead of
// barriering between stages, and snapshot I/O can run behind compute (see
// snapshot/stage_graph.hpp for the cache-aware layer on top).
//
// Determinism contract (the same one parallel_for imposes): node bodies
// write only to their own outputs, so the set of nodes that runs, the
// results they produce, and the error that propagates are identical at
// every thread count. Dispatch is lowest-ready-id-first; on a serial
// executor that yields one canonical topological order — the sequential
// reference the golden tests compare pools against.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "leodivide/runtime/executor.hpp"

namespace leodivide::runtime {

/// Deterministic DAG scheduler. Nodes are added in topological order —
/// every dependency must name an already-added node, so the graph is
/// acyclic by construction and needs no cycle detection.
class TaskGraph {
 public:
  using TaskId = std::size_t;

  /// Per-node outcome after run().
  enum class NodeState : unsigned char {
    kPending,  ///< not reached (only observable mid-run)
    kReady,    ///< queued, not yet started (only observable mid-run)
    kRunning,  ///< executing (only observable mid-run)
    kDone,     ///< body returned normally
    kFailed,   ///< body threw
    kSkipped,  ///< an ancestor failed; body never ran
  };

  /// Adds a node. `name` must have static storage duration (it feeds
  /// obs::Span and the per-stage `graph.queue_wait_us.<name>` histogram).
  /// Every id in `deps` must reference an already-added node; an unknown id
  /// throws std::invalid_argument. Not thread-safe — build the graph, then
  /// run it.
  TaskId add_task(const char* name, std::function<void()> fn,
                  const std::vector<TaskId>& deps = {});

  [[nodiscard]] std::size_t task_count() const noexcept {
    return nodes_.size();
  }

  /// Runs the graph to quiescence on `ex` and blocks until done. Every node
  /// whose ancestors all succeeded runs exactly once; descendants of a
  /// failed node are skipped (a schedule-independent set). If any node
  /// threw, the exception from the *lowest-id* failing node is rethrown —
  /// the same deterministic-error rule as Executor::run_tasks. The graph is
  /// reusable: each call re-runs every node.
  ///
  /// Safe to call from inside a pool task: the executor's re-entrancy
  /// handling runs the pump batch inline, which drains the whole graph
  /// sequentially on the calling thread.
  void run(Executor& ex);

  /// Outcome of node `id` after the most recent run() returned or threw.
  [[nodiscard]] NodeState state(TaskId id) const;

 private:
  struct Node {
    const char* name = nullptr;
    std::function<void()> fn;
    std::vector<TaskId> deps;
    std::vector<TaskId> succs;
    // Per-run state, reset by run(); mutated only under the run mutex.
    std::size_t pending = 0;
    bool parent_failed = false;
    NodeState state = NodeState::kPending;
    std::uint64_t ready_ns = 0;  ///< set only while observability is on
  };

  std::vector<Node> nodes_;
};

}  // namespace leodivide::runtime
