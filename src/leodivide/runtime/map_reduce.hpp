#pragma once
// Sharded map-reduce: each worker fills a thread-local shard over a
// contiguous slice of the input range, then shards are merged *in shard
// index order* on the calling thread. Because a shard covers a contiguous,
// in-order slice and merging preserves shard order, the result is
// bit-identical to the serial path for the merge algebras the library uses:
//
//   * ordered concatenation (shard = vector, merge = append): the output is
//     exactly the serial scan order, regardless of thread count;
//   * keyed integer accumulation (shard = std::map<K, counts>, merge = +=):
//     addition of unsigned counts is associative, so any contiguous
//     partition yields the same final map;
//   * first-strict-max reduction (shard = running best with strict '>'):
//     each shard keeps its first maximum, and an in-order merge with the
//     same strict comparison selects the globally first maximum.
//
// With one chunk (serial executor, tiny inputs) the fill runs directly on
// the result object on the calling thread — literally the old serial loop.

#include <cstddef>
#include <utility>
#include <vector>

#include "leodivide/runtime/parallel_for.hpp"

namespace leodivide::runtime {

/// fill(shard, lo, hi, shard_index) populates `shard` from input slice
/// [lo, hi); merge(into, std::move(from)) folds a later shard into an
/// earlier one. Returns the fold of all shards in index order.
template <typename Shard, typename Fill, typename Merge>
[[nodiscard]] Shard map_reduce(Executor& ex, std::size_t begin,
                               std::size_t end, const Fill& fill,
                               const Merge& merge, std::size_t grain = 1) {
  Shard result{};
  if (end <= begin) return result;
  const std::size_t chunks = chunk_count(ex, end - begin, grain);
  if (chunks == 1) {
    fill(result, begin, end, std::size_t{0});
    return result;
  }
  std::vector<Shard> shards(chunks);
  ex.run_tasks(chunks, [&](std::size_t i) {
    const ChunkRange r = chunk_range(begin, end, chunks, i);
    fill(shards[i], r.lo, r.hi, i);
  });
  result = std::move(shards[0]);
  for (std::size_t i = 1; i < chunks; ++i) {
    merge(result, std::move(shards[i]));
  }
  return result;
}

}  // namespace leodivide::runtime
