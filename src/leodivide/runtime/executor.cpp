#include "leodivide/runtime/executor.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "leodivide/runtime/thread_pool.hpp"

namespace leodivide::runtime {

namespace {

class SerialExecutor final : public Executor {
 public:
  [[nodiscard]] std::size_t concurrency() const noexcept override { return 1; }

  void run_tasks(std::size_t n,
                 const std::function<void(std::size_t)>& task) override {
    // In-order inline execution; a throwing task aborts the batch exactly
    // like the pre-runtime serial loops did (the first throw is necessarily
    // the lowest-indexed one).
    for (std::size_t i = 0; i < n; ++i) task(i);
  }
};

struct GlobalState {
  std::mutex m;
  std::unique_ptr<ThreadPool> pool;
  std::size_t threads = 0;  // 0 = not yet resolved
};

GlobalState& global_state() {
  static GlobalState state;
  return state;
}

}  // namespace

Executor& serial_executor() {
  static SerialExecutor exec;
  return exec;
}

std::optional<std::size_t> parse_thread_count(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;  // rejects "-3", "1e9", "+4"
    value = value * 10 + static_cast<std::size_t>(c - '0');
    if (value > kMaxThreads) return std::nullopt;
  }
  if (value < 1) return std::nullopt;
  return value;
}

std::size_t default_thread_count() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at pool init; the
  // process never calls setenv, so there is no racing writer.
  if (const char* env = std::getenv("LEODIVIDE_THREADS")) {
    if (const auto parsed = parse_thread_count(env)) return *parsed;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

std::size_t worker_count_from_env(std::size_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read at startup; the process
  // never calls setenv, so there is no racing writer.
  if (const char* env = std::getenv("LEODIVIDE_WORKERS")) {
    if (const auto parsed = parse_thread_count(env)) return *parsed;
  }
  return fallback;
}

bool parse_workers_arg(int argc, char** argv, int& i, std::size_t& workers) {
  const std::string_view arg = argv[i];
  constexpr std::string_view kFlag = "--workers";
  std::string_view value;
  if (arg == kFlag) {
    if (i + 1 >= argc) {
      throw std::runtime_error("--workers requires a count");
    }
    value = argv[++i];
  } else if (arg.substr(0, kFlag.size()) == kFlag &&
             arg.size() > kFlag.size() && arg[kFlag.size()] == '=') {
    value = arg.substr(kFlag.size() + 1);
  } else {
    return false;
  }
  const auto parsed = parse_thread_count(value);
  if (!parsed) {
    throw std::runtime_error("invalid --workers value '" + std::string(value) +
                             "'");
  }
  workers = *parsed;
  return true;
}

Executor& global_executor() {
  GlobalState& state = global_state();
  std::lock_guard<std::mutex> lk(state.m);
  if (state.threads == 0) state.threads = default_thread_count();
  if (state.threads == 1) return serial_executor();
  if (!state.pool || state.pool->concurrency() != state.threads) {
    state.pool = std::make_unique<ThreadPool>(state.threads);
  }
  return *state.pool;
}

void set_global_threads(std::size_t threads) {
  GlobalState& state = global_state();
  std::lock_guard<std::mutex> lk(state.m);
  state.threads = threads == 0 ? default_thread_count() : threads;
  if (state.pool && state.pool->concurrency() != state.threads) {
    state.pool.reset();
  }
}

}  // namespace leodivide::runtime
