#pragma once
// parallel_for: static contiguous chunking of an index range over an
// Executor. The range [begin, end) is split into at most concurrency()
// chunks of near-equal size (never smaller than `grain` except the last
// resort single chunk); `body(lo, hi)` is invoked once per chunk with
// disjoint, in-order ranges that exactly cover [begin, end).
//
// Chunk *boundaries* depend on the executor's concurrency, so bodies must
// be range-oblivious (the effect of body(lo, hi) must equal the effect of
// body(lo, m) then body(m, hi)) for results to be thread-count invariant —
// which holds for the disjoint-writes and commutative-accumulation patterns
// used throughout the library. Exceptions propagate per the Executor
// contract (lowest-indexed chunk wins).

#include <algorithm>
#include <cstddef>

#include "leodivide/runtime/executor.hpp"

namespace leodivide::runtime {

/// Number of chunks parallel_for would use for `n` items at `grain`.
[[nodiscard]] inline std::size_t chunk_count(const Executor& ex, std::size_t n,
                                             std::size_t grain) noexcept {
  if (n == 0) return 0;
  const std::size_t g = grain < 1 ? 1 : grain;
  return std::max<std::size_t>(
      1, std::min(ex.concurrency(), (n + g - 1) / g));
}

/// Splits [begin, end) into `chunks` near-equal contiguous ranges and
/// returns chunk `i` as [lo, hi).
struct ChunkRange {
  std::size_t lo;
  std::size_t hi;
};
[[nodiscard]] inline ChunkRange chunk_range(std::size_t begin, std::size_t end,
                                            std::size_t chunks,
                                            std::size_t i) noexcept {
  const std::size_t n = end - begin;
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  const std::size_t lo = begin + i * base + std::min(i, rem);
  return {lo, lo + base + (i < rem ? 1 : 0)};
}

/// Runs body(lo, hi) over a static chunking of [begin, end). `body` may be
/// invoked concurrently from several threads and must tolerate that (the
/// library's bodies write disjoint outputs or fill thread-local shards).
template <typename Body>
void parallel_for(Executor& ex, std::size_t begin, std::size_t end,
                  const Body& body, std::size_t grain = 1) {
  if (end <= begin) return;
  const std::size_t chunks = chunk_count(ex, end - begin, grain);
  if (chunks == 1) {
    body(begin, end);  // the exact serial code path
    return;
  }
  ex.run_tasks(chunks, [&](std::size_t i) {
    const ChunkRange r = chunk_range(begin, end, chunks, i);
    body(r.lo, r.hi);
  });
}

/// Per-index convenience wrapper: body(i) for each i in [begin, end).
template <typename Body>
void parallel_for_each(Executor& ex, std::size_t begin, std::size_t end,
                       const Body& body, std::size_t grain = 1) {
  parallel_for(
      ex, begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

}  // namespace leodivide::runtime
