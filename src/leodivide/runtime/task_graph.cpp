#include "leodivide/runtime/task_graph.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>

#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"

namespace leodivide::runtime {

namespace {

/// Stable id of the dependency edge src → dst, shared by the flow-start
/// event (recorded in src's span) and the flow-end event (in dst's span).
[[nodiscard]] std::uint64_t edge_flow_id(TaskGraph::TaskId src,
                                         TaskGraph::TaskId dst) noexcept {
  return (static_cast<std::uint64_t>(src) << 32) |
         static_cast<std::uint64_t>(dst);
}

}  // namespace

TaskGraph::TaskId TaskGraph::add_task(const char* name,
                                      std::function<void()> fn,
                                      const std::vector<TaskId>& deps) {
  const TaskId id = nodes_.size();
  for (const TaskId dep : deps) {
    if (dep >= id) {
      throw std::invalid_argument(
          "TaskGraph::add_task: dependency does not name an already-added "
          "node");
    }
  }
  Node node;
  node.name = name;
  node.fn = std::move(fn);
  node.deps = deps;
  nodes_.push_back(std::move(node));
  for (const TaskId dep : deps) nodes_[dep].succs.push_back(id);
  return id;
}

TaskGraph::NodeState TaskGraph::state(TaskId id) const {
  return nodes_.at(id).state;
}

void TaskGraph::run(Executor& ex) {
  if (nodes_.empty()) return;
  const bool observed = obs::observability_enabled();
  for (Node& node : nodes_) {
    node.pending = node.deps.size();
    node.parent_failed = false;
    node.state = NodeState::kPending;
    node.ready_ns = 0;
  }

  std::mutex m;
  std::condition_variable work;
  // Lowest-id-first dispatch: deterministic on a serial executor, and a
  // stable priority (insertion ≈ topological order) on pools.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<TaskId>>
      ready;
  std::size_t remaining = nodes_.size();
  std::exception_ptr first_error;
  TaskId first_error_id = 0;

  const auto mark_ready = [&](TaskId id) {
    nodes_[id].state = NodeState::kReady;
    if (observed) [[unlikely]] nodes_[id].ready_ns = obs::now_ns();
    ready.push(id);
  };
  for (TaskId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].pending == 0) mark_ready(id);
  }

  // Called with the run mutex held once node `id` has finished (or been
  // skipped): propagates readiness / skip cascades to its successors.
  const auto settle_successors = [&](TaskId id, bool failed) {
    std::vector<TaskId> skip_stack;
    const auto complete_edge = [&](TaskId succ, bool parent_failed,
                                   std::vector<TaskId>& stack) {
      Node& s = nodes_[succ];
      if (parent_failed) s.parent_failed = true;
      if (--s.pending != 0) return;
      if (s.parent_failed) {
        stack.push_back(succ);
      } else {
        mark_ready(succ);
      }
    };
    for (const TaskId succ : nodes_[id].succs) {
      complete_edge(succ, failed, skip_stack);
    }
    while (!skip_stack.empty()) {
      const TaskId sid = skip_stack.back();
      skip_stack.pop_back();
      nodes_[sid].state = NodeState::kSkipped;
      --remaining;
      for (const TaskId succ : nodes_[sid].succs) {
        complete_edge(succ, /*parent_failed=*/true, skip_stack);
      }
    }
  };

  const auto run_node = [&](TaskId id) -> std::exception_ptr {
    Node& node = nodes_[id];
    if (observed) [[unlikely]] {
      if (obs::metrics_enabled() && node.ready_ns != 0) {
        const std::uint64_t now = obs::now_ns();
        obs::registry()
            .histogram(std::string("graph.queue_wait_us.") + node.name)
            .record_always_us(
                now > node.ready_ns ? (now - node.ready_ns) / 1000 : 0);
      }
      obs::Span span(node.name);
      for (const TaskId dep : node.deps) {
        obs::record_flow_end("graph.edge", edge_flow_id(dep, id));
      }
      std::exception_ptr err;
      try {
        node.fn();
      } catch (...) {
        err = std::current_exception();
      }
      for (const TaskId succ : node.succs) {
        obs::record_flow_start("graph.edge", edge_flow_id(id, succ));
      }
      return err;
    }
    try {
      node.fn();
    } catch (...) {
      return std::current_exception();
    }
    return nullptr;
  };

  const auto pump = [&](std::size_t /*pump_index*/) {
    for (;;) {
      TaskId id = 0;
      {
        std::unique_lock<std::mutex> lk(m);
        work.wait(lk, [&] { return remaining == 0 || !ready.empty(); });
        if (ready.empty()) return;  // remaining == 0: graph quiesced
        id = ready.top();
        ready.pop();
        nodes_[id].state = NodeState::kRunning;
      }
      const std::exception_ptr err = run_node(id);
      {
        std::lock_guard<std::mutex> lk(m);
        nodes_[id].state = err ? NodeState::kFailed : NodeState::kDone;
        if (err && (!first_error || id < first_error_id)) {
          first_error = err;
          first_error_id = id;
        }
        --remaining;
        settle_successors(id, err != nullptr);
      }
      work.notify_all();
    }
  };

  const std::size_t pumps = std::min(ex.concurrency(), nodes_.size());
  ex.run_tasks(pumps, pump);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace leodivide::runtime
