#pragma once
// Execution substrate for the demand→sizing pipeline. Every hot loop in the
// library (location→cell aggregation, synthetic generation, polyfill, the
// sizing sweep, per-epoch simulation) runs through an Executor so the same
// code serves both the exact serial path (threads = 1) and a fixed-size
// thread pool — with bit-identical results either way (see map_reduce.hpp
// for the determinism contract).

#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>

namespace leodivide::runtime {

/// Upper bound on an explicitly requested thread count. Requests above this
/// are treated as malformed (fall back to the hardware default) rather than
/// clamped — a 1e9-thread request is a configuration bug, not a wish.
inline constexpr std::size_t kMaxThreads = 4096;

/// Strict thread-count parser for LEODIVIDE_THREADS / --threads values.
/// Accepts a decimal integer in [1, kMaxThreads] with optional surrounding
/// whitespace; anything else — empty, non-numeric, trailing garbage
/// ("1e9"), zero, negative, or out of range — returns std::nullopt so the
/// caller falls back to the hardware default.
[[nodiscard]] std::optional<std::size_t> parse_thread_count(
    std::string_view text) noexcept;

/// Abstract batch executor. run_tasks blocks until every task has finished,
/// so callers never observe partially-completed batches.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Number of workers that may run tasks concurrently (always >= 1).
  [[nodiscard]] virtual std::size_t concurrency() const noexcept = 0;

  /// Runs task(0) .. task(n-1), possibly concurrently, and returns once the
  /// batch has completed. On failure the exception from the *lowest-indexed*
  /// failing task is rethrown — a deterministic choice regardless of thread
  /// scheduling. (The serial executor stops at the first throw, which is by
  /// construction the lowest-indexed one; pools run every task.)
  virtual void run_tasks(std::size_t n,
                         const std::function<void(std::size_t)>& task) = 0;
};

/// Inline executor: concurrency() == 1; run_tasks executes tasks in index
/// order on the calling thread. This is exactly the pre-runtime serial code
/// path of every wired algorithm.
[[nodiscard]] Executor& serial_executor();

/// Process-global executor, created lazily. Thread count comes from the
/// LEODIVIDE_THREADS environment variable when it parses per
/// parse_thread_count, otherwise std::thread::hardware_concurrency(). A
/// count of 1 yields the serial executor — no pool threads are ever
/// started.
[[nodiscard]] Executor& global_executor();

/// Replaces the process-global executor with one of `threads` workers
/// (0 restores the environment/hardware default). Must not be called while
/// another thread is using global_executor().
void set_global_threads(std::size_t threads);

/// The thread count global_executor() uses before any set_global_threads
/// override: LEODIVIDE_THREADS if set, else hardware concurrency.
[[nodiscard]] std::size_t default_thread_count();

/// Worker-pool sizing for serving binaries: LEODIVIDE_WORKERS if it parses
/// per parse_thread_count, else `fallback`. Same hardening as
/// LEODIVIDE_THREADS — malformed values fall back, never clamp.
[[nodiscard]] std::size_t worker_count_from_env(std::size_t fallback);

/// Consumes `--workers <n>` / `--workers=<n>` at argv[i] (advancing i past
/// a separate value argument) and writes the parsed count to `workers`.
/// Returns false when argv[i] is not a workers flag. Throws
/// std::runtime_error when the flag is present but the value is missing or
/// fails parse_thread_count — an invalid explicit request is a
/// configuration bug, not a wish.
bool parse_workers_arg(int argc, char** argv, int& i, std::size_t& workers);

}  // namespace leodivide::runtime
