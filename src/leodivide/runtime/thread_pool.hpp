#pragma once
// Fixed-size thread pool with a shared work queue and clean shutdown. The
// pool satisfies the Executor batch contract: run_tasks enqueues the batch,
// the calling thread helps drain it, and the lowest-indexed task exception
// is rethrown once the batch has fully completed.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "leodivide/runtime/executor.hpp"

namespace leodivide::runtime {

class ThreadPool final : public Executor {
 public:
  /// Starts `threads` workers (clamped to >= 1). With one worker the pool
  /// still runs tasks on the calling thread via the helping loop, so a
  /// ThreadPool(1) batch is executed in index order like serial_executor().
  explicit ThreadPool(std::size_t threads);

  /// Signals shutdown, wakes every worker, and joins them. Pending batches
  /// are drained before the workers exit (run_tasks blocks its caller, so a
  /// well-formed program never destroys a pool mid-batch from another
  /// thread).
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t concurrency() const noexcept override;

  /// Batch execution per the Executor contract. Re-entrant calls from
  /// inside a pool task (worker or helping caller, any pool) detect the
  /// nesting and run the batch inline on the current thread in index order
  /// with serial semantics — never enqueued, never deadlocked, stack
  /// bounded by the nesting depth rather than the queue contents.
  void run_tasks(std::size_t n,
                 const std::function<void(std::size_t)>& task) override;

  /// True while the calling thread is executing a pool task (the state that
  /// makes run_tasks go inline). Exposed for the re-entrancy regression
  /// tests.
  [[nodiscard]] static bool inside_pool_task() noexcept;

 private:
  struct Batch;  // one run_tasks invocation's shared state

  void worker_loop();
  static void run_one(Batch& batch, std::size_t index);

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::pair<Batch*, std::size_t>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace leodivide::runtime
