#include "leodivide/spectrum/band.hpp"

#include <stdexcept>

namespace leodivide::spectrum {

std::string to_string(BeamUsage usage) {
  switch (usage) {
    case BeamUsage::kUserDownlink:
      return "DL to UTs";
    case BeamUsage::kUserOrGatewayDownlink:
      return "DL to UTs / GWs";
    case BeamUsage::kGatewayDownlink:
      return "DL to GWs";
    case BeamUsage::kUserUplink:
      return "UL from UTs";
    case BeamUsage::kGatewayUplink:
      return "UL from GWs";
  }
  return "unknown";
}

SpectrumPlan::SpectrumPlan(std::vector<Band> bands)
    : bands_(std::move(bands)) {
  if (bands_.empty()) throw std::invalid_argument("SpectrumPlan: no bands");
  for (const auto& b : bands_) {
    if (b.hi_ghz <= b.lo_ghz) {
      throw std::invalid_argument("SpectrumPlan: band '" + b.name +
                                  "' has non-positive width");
    }
  }
}

double SpectrumPlan::user_downlink_mhz() const noexcept {
  double mhz = 0.0;
  for (const auto& b : bands_) {
    if (b.usage == BeamUsage::kUserDownlink ||
        b.usage == BeamUsage::kUserOrGatewayDownlink ||
        b.usage == BeamUsage::kUserUplink) {
      // For an uplink plan the "user" aggregate is the UT uplink spectrum.
      mhz += b.width_mhz();
    }
  }
  return mhz;
}

double SpectrumPlan::total_mhz() const noexcept {
  double mhz = 0.0;
  for (const auto& b : bands_) mhz += b.width_mhz();
  return mhz;
}

std::uint32_t SpectrumPlan::user_beams() const noexcept {
  std::uint32_t n = 0;
  for (const auto& b : bands_) {
    if (b.usage == BeamUsage::kUserDownlink ||
        b.usage == BeamUsage::kUserOrGatewayDownlink ||
        b.usage == BeamUsage::kUserUplink) {
      n += b.beams;
    }
  }
  return n;
}

std::uint32_t SpectrumPlan::total_beams() const noexcept {
  std::uint32_t n = 0;
  for (const auto& b : bands_) n += b.beams;
  return n;
}

SpectrumPlan starlink_schedule_s() {
  // Paper Table 1, sourced from SpaceX FCC filing SAT-AMD-20210818-00105.
  return SpectrumPlan{{
      {"10.7-12.75 GHz", 10.70, 12.75, 4, BeamUsage::kUserDownlink},
      {"19.7-20.2 GHz", 19.70, 20.20, 8, BeamUsage::kUserDownlink},
      {"17.8-18.6 GHz", 17.80, 18.60, 8, BeamUsage::kUserOrGatewayDownlink},
      {"18.8-19.3 GHz", 18.80, 19.30, 4, BeamUsage::kUserOrGatewayDownlink},
      {"71-76 GHz", 71.00, 76.00, 4, BeamUsage::kGatewayDownlink},
  }};
}

SpectrumPlan starlink_uplink_schedule_s() {
  return SpectrumPlan{{
      {"14.0-14.5 GHz", 14.00, 14.50, 8, BeamUsage::kUserUplink},
      {"27.5-29.1 GHz", 27.50, 29.10, 4, BeamUsage::kGatewayUplink},
      {"29.5-30.0 GHz", 29.50, 30.00, 4, BeamUsage::kGatewayUplink},
      {"81-86 GHz", 81.00, 86.00, 4, BeamUsage::kGatewayUplink},
  }};
}

}  // namespace leodivide::spectrum
