#include "leodivide/spectrum/beamplan.hpp"

#include <stdexcept>

namespace leodivide::spectrum {

BeamPlan::BeamPlan(SpectrumPlan plan, std::uint32_t beams_per_full_cell,
                   double bps_per_hz)
    : plan_(std::move(plan)),
      beams_per_full_cell_(beams_per_full_cell),
      bps_per_hz_(bps_per_hz) {
  if (beams_per_full_cell_ == 0) {
    throw std::invalid_argument("BeamPlan: beams_per_full_cell must be > 0");
  }
  if (beams_per_full_cell_ > plan_.user_beams()) {
    throw std::invalid_argument(
        "BeamPlan: beams_per_full_cell exceeds user beams");
  }
  if (bps_per_hz_ <= 0.0) {
    throw std::invalid_argument("BeamPlan: spectral efficiency must be > 0");
  }
}

double BeamPlan::full_cell_capacity_gbps() const noexcept {
  return capacity_gbps(plan_.user_downlink_mhz(), bps_per_hz_);
}

double BeamPlan::per_beam_capacity_gbps() const noexcept {
  return full_cell_capacity_gbps() / static_cast<double>(beams_per_full_cell_);
}

double BeamPlan::spread_cell_capacity_gbps(double beamspread) const {
  if (beamspread < 1.0) {
    throw std::invalid_argument("BeamPlan: beamspread must be >= 1");
  }
  return full_cell_capacity_gbps() / beamspread;
}

double BeamPlan::cells_served_per_satellite(
    double beamspread, std::uint32_t beams_on_peak) const {
  if (beamspread < 1.0) {
    throw std::invalid_argument("BeamPlan: beamspread must be >= 1");
  }
  if (beams_on_peak == 0 || beams_on_peak > plan_.user_beams()) {
    throw std::invalid_argument("BeamPlan: beams_on_peak outside [1, beams]");
  }
  return 1.0 + static_cast<double>(plan_.user_beams() - beams_on_peak) *
                   beamspread;
}

BeamPlan starlink_beam_plan() { return BeamPlan(starlink_schedule_s()); }

}  // namespace leodivide::spectrum
