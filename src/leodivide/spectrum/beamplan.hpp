#pragma once
// Per-satellite beam accounting: how many spot beams a satellite forms, how
// many are needed to pour the full user-downlink spectrum into one cell, and
// how beamspreading divides a beam's capacity across cells.

#include <cstdint>

#include "leodivide/spectrum/band.hpp"
#include "leodivide/spectrum/efficiency.hpp"

namespace leodivide::spectrum {

/// Beam-level view of a satellite under a spectrum plan.
class BeamPlan {
 public:
  /// `beams_per_full_cell`: beams required to deliver the entire user
  /// downlink spectrum into a single cell (4 per the FCC filings — the four
  /// frequency-band groups land on the same cell).
  BeamPlan(SpectrumPlan plan, std::uint32_t beams_per_full_cell = 4,
           double bps_per_hz = kPaperSpectralEfficiency);

  [[nodiscard]] const SpectrumPlan& spectrum() const noexcept { return plan_; }
  [[nodiscard]] std::uint32_t user_beams() const noexcept {
    return plan_.user_beams();
  }
  [[nodiscard]] std::uint32_t beams_per_full_cell() const noexcept {
    return beams_per_full_cell_;
  }
  [[nodiscard]] double spectral_efficiency() const noexcept {
    return bps_per_hz_;
  }

  /// Max capacity a single cell can receive (all user spectrum) [Gbps] —
  /// 17.325 Gbps under the paper's plan.
  [[nodiscard]] double full_cell_capacity_gbps() const noexcept;

  /// Capacity of one beam [Gbps] = full cell capacity / beams per cell.
  [[nodiscard]] double per_beam_capacity_gbps() const noexcept;

  /// Capacity each cell receives when one beam is spread across
  /// `beamspread` cells [Gbps]. Throws std::invalid_argument for
  /// beamspread < 1.
  [[nodiscard]] double spread_cell_capacity_gbps(double beamspread) const;

  /// Number of cells a satellite can keep beams on when the peak cell takes
  /// `beams_on_peak` beams and every other beam is spread across
  /// `beamspread` cells: 1 + (user_beams - beams_on_peak) * beamspread.
  /// This is the denominator of the paper's constellation-sizing formula.
  [[nodiscard]] double cells_served_per_satellite(double beamspread,
                                                  std::uint32_t beams_on_peak)
      const;

 private:
  SpectrumPlan plan_;
  std::uint32_t beams_per_full_cell_;
  double bps_per_hz_;
};

/// The paper's beam plan: Schedule-S spectrum, 4 beams per full cell,
/// 4.5 bps/Hz.
[[nodiscard]] BeamPlan starlink_beam_plan();

}  // namespace leodivide::spectrum
