#pragma once
// A compact Ku-band downlink budget. The paper takes 4.5 bps/Hz as given;
// this module derives a comparable figure from first principles so the
// assumption is testable rather than an oracle constant.

namespace leodivide::spectrum {

/// Parameters of a satellite->terminal downlink.
struct LinkBudget {
  double frequency_ghz = 11.7;     ///< Ku downlink center
  double eirp_dbw = 36.0;          ///< per-beam EIRP (typical Starlink filing)
  double rx_gain_dbi = 33.0;       ///< user terminal phased array gain
  double system_noise_temp_k = 290.0;
  double bandwidth_mhz = 240.0;    ///< per-carrier bandwidth
  double slant_range_km = 600.0;
  double atmospheric_loss_db = 0.5;
  double misc_losses_db = 1.0;
};

/// Free-space path loss [dB].
[[nodiscard]] double free_space_path_loss_db(double range_km,
                                             double frequency_ghz);

/// Received carrier-to-noise ratio [dB] for the budget. Validates the
/// budget first — non-finite or non-positive bandwidth, noise temperature,
/// frequency or slant range, and a non-finite EIRP, all throw
/// std::invalid_argument naming the offending field (a NaN would otherwise
/// propagate silently through every downstream efficiency figure).
[[nodiscard]] double carrier_to_noise_db(const LinkBudget& budget);

/// Achievable spectral efficiency [bps/Hz]: the DVB-S2X MODCOD selected at
/// the budget's C/N.
[[nodiscard]] double achievable_efficiency(const LinkBudget& budget);

/// Shannon-bound efficiency at the budget's C/N [bps/Hz].
[[nodiscard]] double shannon_bound_efficiency(const LinkBudget& budget);

}  // namespace leodivide::spectrum
