#pragma once
// Frequency band bookkeeping for the Schedule-S style spectrum model.

#include <cstdint>
#include <string>
#include <vector>

namespace leodivide::spectrum {

/// What traffic a band/beam group may carry.
enum class BeamUsage {
  kUserDownlink,          ///< downlink to user terminals only
  kUserOrGatewayDownlink, ///< flexibly user terminals or gateways
  kGatewayDownlink,       ///< downlink to gateways only
  kUserUplink,            ///< uplink from user terminals
  kGatewayUplink,         ///< feeder uplink from gateways
};

[[nodiscard]] std::string to_string(BeamUsage usage);

/// One row of the spectrum table: a contiguous band allocated to a number of
/// beams with a usage class.
struct Band {
  std::string name;        ///< e.g. "10.7-12.75 GHz"
  double lo_ghz = 0.0;
  double hi_ghz = 0.0;
  std::uint32_t beams = 0; ///< beams formed in this band per satellite
  BeamUsage usage = BeamUsage::kUserDownlink;

  /// Bandwidth in MHz.
  [[nodiscard]] double width_mhz() const noexcept {
    return (hi_ghz - lo_ghz) * 1000.0;
  }

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const Band&, const Band&) = default;
};

/// A full spectrum plan (a set of bands). Provides the aggregates the
/// paper's Table 1 reports.
class SpectrumPlan {
 public:
  explicit SpectrumPlan(std::vector<Band> bands);

  [[nodiscard]] const std::vector<Band>& bands() const noexcept {
    return bands_;
  }

  /// Total MHz usable for user-terminal downlink (kUserDownlink +
  /// kUserOrGatewayDownlink bands).
  [[nodiscard]] double user_downlink_mhz() const noexcept;

  /// Total MHz across all bands (including gateway-only).
  [[nodiscard]] double total_mhz() const noexcept;

  /// Beams usable for user-terminal downlink.
  [[nodiscard]] std::uint32_t user_beams() const noexcept;

  /// All beams (including gateway-only).
  [[nodiscard]] std::uint32_t total_beams() const noexcept;

 private:
  std::vector<Band> bands_;
};

/// The Starlink Gen2 Schedule-S spectrum plan as tabulated in the paper
/// (Table 1): 3850 MHz / 24 beams to user terminals, 8850 MHz / 28 beams
/// total. Downlink only — the paper's analysis is downlink-driven.
[[nodiscard]] SpectrumPlan starlink_schedule_s();

/// EXTENSION (not in the paper): the corresponding uplink spectrum. User
/// terminals transmit in 14.0-14.5 GHz (Ku, 500 MHz); gateways feed the
/// satellites in 27.5-29.1 / 29.5-30.0 GHz (Ka, 2100 MHz) and 81-86 GHz
/// (E-band, 5000 MHz). Beam counts mirror the downlink groups. Used by
/// core/uplink.hpp to test whether the paper's downlink-only analysis is
/// conservative.
[[nodiscard]] SpectrumPlan starlink_uplink_schedule_s();

}  // namespace leodivide::spectrum
