#include "leodivide/spectrum/linkbudget.hpp"

#include <cmath>
#include <stdexcept>

#include "leodivide/spectrum/efficiency.hpp"

namespace leodivide::spectrum {

namespace {
constexpr double kBoltzmannDbwPerHzK = -228.6;  // 10*log10(k_B)
}

double free_space_path_loss_db(double range_km, double frequency_ghz) {
  if (range_km <= 0.0 || frequency_ghz <= 0.0) {
    throw std::invalid_argument("free_space_path_loss_db: non-positive input");
  }
  // FSPL = 20 log10(d_km) + 20 log10(f_GHz) + 92.45.
  return 20.0 * std::log10(range_km) + 20.0 * std::log10(frequency_ghz) +
         92.45;
}

double carrier_to_noise_db(const LinkBudget& b) {
  if (!std::isfinite(b.bandwidth_mhz) || b.bandwidth_mhz <= 0.0) {
    throw std::invalid_argument(
        "carrier_to_noise_db: bandwidth_mhz must be finite and positive");
  }
  if (!std::isfinite(b.eirp_dbw)) {
    throw std::invalid_argument("carrier_to_noise_db: eirp_dbw must be finite");
  }
  if (!std::isfinite(b.system_noise_temp_k) || b.system_noise_temp_k <= 0.0) {
    throw std::invalid_argument(
        "carrier_to_noise_db: system_noise_temp_k must be finite and "
        "positive");
  }
  if (!std::isfinite(b.frequency_ghz) || !std::isfinite(b.slant_range_km)) {
    throw std::invalid_argument(
        "carrier_to_noise_db: frequency_ghz and slant_range_km must be "
        "finite");
  }
  if (!std::isfinite(b.rx_gain_dbi) || !std::isfinite(b.atmospheric_loss_db) ||
      !std::isfinite(b.misc_losses_db)) {
    throw std::invalid_argument(
        "carrier_to_noise_db: gains and losses must be finite");
  }
  const double fspl =
      free_space_path_loss_db(b.slant_range_km, b.frequency_ghz);
  const double noise_dbw = kBoltzmannDbwPerHzK +
                           10.0 * std::log10(b.system_noise_temp_k) +
                           10.0 * std::log10(b.bandwidth_mhz * 1e6);
  const double rx_power_dbw = b.eirp_dbw - fspl + b.rx_gain_dbi -
                              b.atmospheric_loss_db - b.misc_losses_db;
  return rx_power_dbw - noise_dbw;
}

double achievable_efficiency(const LinkBudget& b) {
  return modcod_efficiency(carrier_to_noise_db(b));
}

double shannon_bound_efficiency(const LinkBudget& b) {
  return shannon_efficiency(std::pow(10.0, carrier_to_noise_db(b) / 10.0));
}

}  // namespace leodivide::spectrum
