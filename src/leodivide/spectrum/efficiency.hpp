#pragma once
// Spectral efficiency: the bits-per-Hz assumption that converts spectrum
// width into channel capacity. The paper adopts ~4.5 bps/Hz from Rozenvasser
// & Shulakova's Starlink capacity estimate; the link-budget module provides
// a from-first-principles cross-check.

namespace leodivide::spectrum {

/// The paper's adopted downlink spectral efficiency [bps/Hz].
inline constexpr double kPaperSpectralEfficiency = 4.5;

/// Converts spectrum width [MHz] and efficiency [bps/Hz] to capacity [Gbps].
[[nodiscard]] double capacity_gbps(double width_mhz, double bps_per_hz);

/// Shannon capacity efficiency [bps/Hz] for a given SNR (linear).
[[nodiscard]] double shannon_efficiency(double snr_linear);

/// Efficiency of a DVB-S2X-like MODCOD ladder at a given SNR [dB]: the
/// highest ladder entry whose required SNR is satisfied. Returns 0 below
/// the most robust MODCOD's threshold.
[[nodiscard]] double modcod_efficiency(double snr_db);

}  // namespace leodivide::spectrum
