#include "leodivide/spectrum/efficiency.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace leodivide::spectrum {

double capacity_gbps(double width_mhz, double bps_per_hz) {
  if (width_mhz < 0.0 || bps_per_hz < 0.0) {
    throw std::invalid_argument("capacity_gbps: negative input");
  }
  return width_mhz * 1e6 * bps_per_hz / 1e9;
}

double shannon_efficiency(double snr_linear) {
  if (snr_linear < 0.0) {
    throw std::invalid_argument("shannon_efficiency: negative SNR");
  }
  return std::log2(1.0 + snr_linear);
}

double modcod_efficiency(double snr_db) {
  // Representative DVB-S2X ladder entries: {required Es/N0 [dB], bps/Hz}.
  static constexpr std::array<std::pair<double, double>, 12> kLadder{{
      {-2.35, 0.49},  // QPSK 1/4
      {1.00, 0.99},   // QPSK 1/2
      {5.18, 1.65},   // QPSK 5/6
      {6.62, 2.10},   // 8PSK 3/5 (approx 2.1)
      {8.97, 2.48},   // 8PSK 3/4
      {10.98, 2.97},  // 8PSK 9/10
      {11.61, 3.30},  // 16APSK 5/6
      {13.13, 3.57},  // 16APSK 9/10
      {14.28, 4.12},  // 32APSK 5/6
      {16.05, 4.45},  // 32APSK 9/10
      {17.70, 4.94},  // 64APSK 5/6
      {19.57, 5.44},  // 64APSK 9/10
  }};
  double best = 0.0;
  for (const auto& [threshold_db, eff] : kLadder) {
    if (snr_db >= threshold_db) best = eff;
  }
  return best;
}

}  // namespace leodivide::spectrum
