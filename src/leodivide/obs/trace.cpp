#include "leodivide/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <string>

#include "leodivide/io/json.hpp"
#include "leodivide/obs/metrics.hpp"

namespace leodivide::obs {

std::uint64_t now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder r;
  return r;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> lk(m_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size() - 1);
    buffer = buffers_.back().get();
  }
  return *buffer;
}

std::uint32_t TraceRecorder::thread_id() { return local_buffer().tid; }

void TraceRecorder::record(const TraceEvent& event) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lk(buf.m);
  buf.events.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(m_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> blk(buf->m);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  return out;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> blk(buf->m);
    n += buf->events.size();
  }
  return n;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> all = events();
  std::uint32_t max_tid = 0;
  for (const auto& e : all) max_tid = std::max(max_tid, e.tid);

  io::JsonWriter json(out, /*pretty=*/false);
  json.begin_object();
  json.begin_array("traceEvents");
  // Metadata: process + thread names so Perfetto's track labels read well.
  json.begin_object();
  json.value("name", "process_name");
  json.value("ph", "M");
  json.value("pid", 1LL);
  json.begin_object("args");
  json.value("name", "leodivide");
  json.end_object();
  json.end_object();
  if (!all.empty()) {
    for (std::uint32_t tid = 0; tid <= max_tid; ++tid) {
      json.begin_object();
      json.value("name", "thread_name");
      json.value("ph", "M");
      json.value("pid", 1LL);
      json.value("tid", static_cast<long long>(tid));
      json.begin_object("args");
      json.value("name", "thread-" + std::to_string(tid));
      json.end_object();
      json.end_object();
    }
  }
  for (const auto& e : all) {
    json.begin_object();
    json.value("name", e.name);
    if (e.phase == TracePhase::kComplete) {
      json.value("cat", "leodivide");
      json.value("ph", "X");
    } else {
      json.value("cat", "leodivide.flow");
      json.value("ph", e.phase == TracePhase::kFlowStart ? "s" : "f");
      json.value("id", static_cast<long long>(e.flow_id));
      // Bind the arrow head to the enclosing slice rather than the next
      // slice on the thread — the consuming span is already running when
      // the flow end is recorded.
      if (e.phase == TracePhase::kFlowEnd) json.value("bp", "e");
    }
    json.value("pid", 1LL);
    json.value("tid", static_cast<long long>(e.tid));
    json.value("ts", static_cast<double>(e.start_ns) / 1e3);
    if (e.phase == TracePhase::kComplete) {
      json.value("dur", static_cast<double>(e.dur_ns) / 1e3);
    }
    json.end_object();
  }
  json.end_array();
  json.value("displayTimeUnit", "ms");
  json.end_object();
  out << '\n';
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> blk(buf->m);
    buf->events.clear();
  }
}

namespace {

void record_flow(const char* name, std::uint64_t flow_id,
                 TracePhase phase) noexcept {
  if (!tracing_enabled()) return;
  // Mirrors Span::end(): flow recording may run on unwind paths, so swallow
  // allocation failures from the recorder rather than terminating.
  try {
    TraceRecorder& rec = TraceRecorder::instance();
    rec.record(
        TraceEvent{name, now_ns(), 0, rec.thread_id(), phase, flow_id});
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

}  // namespace

void record_flow_start(const char* name, std::uint64_t flow_id) noexcept {
  record_flow(name, flow_id, TracePhase::kFlowStart);
}

void record_flow_end(const char* name, std::uint64_t flow_id) noexcept {
  record_flow(name, flow_id, TracePhase::kFlowEnd);
}

// -------------------------------------------------------------------- Span --

void Span::begin(const char* name) noexcept {
  name_ = name;
  start_ns_ = now_ns();
}

void Span::end() noexcept {
  // Runs during unwinding too (Span is RAII), so swallow any allocation
  // failure from the recorder/registry rather than terminating.
  try {
    const std::uint64_t dur = now_ns() - start_ns_;
    if (tracing_enabled()) {
      TraceRecorder& rec = TraceRecorder::instance();
      rec.record(TraceEvent{name_, start_ns_, dur, rec.thread_id()});
    }
    if (metrics_enabled()) {
      registry().timer(name_).record_ns(dur);
    }
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

}  // namespace leodivide::obs
