#pragma once
// The observability on/off gate. Every obs hook in a hot path starts with a
// single relaxed atomic load and a branch; with both facilities disabled the
// hook does nothing else, so the instrumented pipeline keeps its exact
// serial/parallel behaviour and byte-identical output (asserted in
// tests/test_obs.cpp). Tracing and metrics are gated independently:
// tracing feeds the Chrome-trace recorder, metrics feed the registry.

#include <atomic>
#include <cstdint>

namespace leodivide::obs {

enum ObsBits : std::uint8_t {
  kTraceBit = 0x1,
  kMetricsBit = 0x2,
};

namespace detail {
inline std::atomic<std::uint8_t> g_flags{0};
}  // namespace detail

[[nodiscard]] inline bool tracing_enabled() noexcept {
  return (detail::g_flags.load(std::memory_order_relaxed) & kTraceBit) != 0;
}

[[nodiscard]] inline bool metrics_enabled() noexcept {
  return (detail::g_flags.load(std::memory_order_relaxed) & kMetricsBit) != 0;
}

/// True when either facility is on — the one-load fast-path check used by
/// hooks that serve both (spans).
[[nodiscard]] inline bool observability_enabled() noexcept {
  return detail::g_flags.load(std::memory_order_relaxed) != 0;
}

inline void set_tracing_enabled(bool on) noexcept {
  if (on) {
    detail::g_flags.fetch_or(kTraceBit, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(
        static_cast<std::uint8_t>(~kTraceBit), std::memory_order_relaxed);
  }
}

inline void set_metrics_enabled(bool on) noexcept {
  if (on) {
    detail::g_flags.fetch_or(kMetricsBit, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(
        static_cast<std::uint8_t>(~kMetricsBit), std::memory_order_relaxed);
  }
}

}  // namespace leodivide::obs
