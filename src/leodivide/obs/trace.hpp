#pragma once
// Scoped tracing: RAII spans that record complete ("ph":"X") events into
// per-thread buffers, exported as Chrome trace-event JSON that loads in
// chrome://tracing and Perfetto. Span names must be string literals (or
// otherwise outlive the recorder) — spans store the pointer, not a copy, so
// the disabled path never allocates.
//
// A Span also feeds the metrics registry: on scope exit the duration is
// added to the stage timer of the same name (when metrics are on), which is
// where bench "stages" breakdowns come from. With both facilities off, the
// constructor is a single relaxed load + branch and the destructor a
// null-pointer test.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "leodivide/obs/gate.hpp"

namespace leodivide::obs {

/// Nanoseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// One completed span. `name` must have static storage duration.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< small stable per-thread id, first-use order
};

/// Process-wide trace sink. Threads append to their own buffers (guarded by
/// a per-buffer mutex so export can run concurrently with stragglers);
/// write_chrome_trace merges and time-sorts everything.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Small stable id of the calling thread (0, 1, 2, … in first-use order).
  [[nodiscard]] std::uint32_t thread_id();

  void record(const TraceEvent& event);

  /// All events so far, merged across threads and sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;

  /// Writes {"traceEvents": [...]} with thread-name metadata. Compact JSON,
  /// timestamps in microseconds as chrome://tracing expects.
  void write_chrome_trace(std::ostream& out) const;

  /// Drops every recorded event (thread registrations survive, so cached
  /// thread ids stay valid).
  void clear();

 private:
  struct ThreadBuffer {
    mutable std::mutex m;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };
  TraceRecorder() = default;
  ThreadBuffer& local_buffer();

  mutable std::mutex m_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII stage span. Usage: `obs::Span span("demand.aggregate");`
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (observability_enabled()) [[unlikely]] begin(name);
  }
  ~Span() {
    if (name_ != nullptr) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name) noexcept;
  void end() noexcept;

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace leodivide::obs
