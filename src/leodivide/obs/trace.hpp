#pragma once
// Scoped tracing: RAII spans that record complete ("ph":"X") events into
// per-thread buffers, exported as Chrome trace-event JSON that loads in
// chrome://tracing and Perfetto. Span names must be string literals (or
// otherwise outlive the recorder) — spans store the pointer, not a copy, so
// the disabled path never allocates.
//
// A Span also feeds the metrics registry: on scope exit the duration is
// added to the stage timer of the same name (when metrics are on), which is
// where bench "stages" breakdowns come from. With both facilities off, the
// constructor is a single relaxed load + branch and the destructor a
// null-pointer test.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "leodivide/obs/gate.hpp"

namespace leodivide::obs {

/// Nanoseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Event kind in the Chrome trace-event model: complete slices ("ph":"X")
/// from spans, and flow arrows ("ph":"s" / "ph":"f") that connect a
/// producing slice to a consuming slice across threads — how task-graph
/// edges become visible in the trace viewer.
enum class TracePhase : std::uint8_t {
  kComplete = 0,
  kFlowStart = 1,
  kFlowEnd = 2,
};

/// One recorded event. `name` must have static storage duration. Flow
/// events carry a matching `flow_id` (start/end pairs share it) and a zero
/// duration.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< small stable per-thread id, first-use order
  TracePhase phase = TracePhase::kComplete;
  std::uint64_t flow_id = 0;  ///< pairs "s" with "f"; 0 for complete events
};

/// Records the producing end of a flow arrow ("ph":"s"). Call from inside
/// the span that produced the value so the viewer binds the arrow to that
/// slice. No-op unless tracing is enabled. `name` must have static storage
/// duration.
void record_flow_start(const char* name, std::uint64_t flow_id) noexcept;

/// Records the consuming end of a flow arrow ("ph":"f", binding point
/// "enclosing slice"). Call from inside the consuming span. No-op unless
/// tracing is enabled.
void record_flow_end(const char* name, std::uint64_t flow_id) noexcept;

/// Process-wide trace sink. Threads append to their own buffers (guarded by
/// a per-buffer mutex so export can run concurrently with stragglers);
/// write_chrome_trace merges and time-sorts everything.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Small stable id of the calling thread (0, 1, 2, … in first-use order).
  [[nodiscard]] std::uint32_t thread_id();

  void record(const TraceEvent& event);

  /// All events so far, merged across threads and sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;

  /// Writes {"traceEvents": [...]} with thread-name metadata. Compact JSON,
  /// timestamps in microseconds as chrome://tracing expects.
  void write_chrome_trace(std::ostream& out) const;

  /// Drops every recorded event (thread registrations survive, so cached
  /// thread ids stay valid).
  void clear();

 private:
  struct ThreadBuffer {
    mutable std::mutex m;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };
  TraceRecorder() = default;
  ThreadBuffer& local_buffer();

  mutable std::mutex m_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII stage span. Usage: `obs::Span span("demand.aggregate");`
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (observability_enabled()) [[unlikely]] begin(name);
  }
  ~Span() {
    if (name_ != nullptr) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name) noexcept;
  void end() noexcept;

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace leodivide::obs
