#pragma once
// Umbrella header + session plumbing for the observability subsystem.
//
// Enabling (any one of):
//   * env:   LEODIVIDE_TRACE=1            trace to ./trace.json
//            LEODIVIDE_TRACE=<path>       trace to <path>
//            LEODIVIDE_METRICS=1          metrics dump to stdout at exit
//            LEODIVIDE_METRICS=<path>     metrics JSON to <path>
//   * CLI:   --trace <file> / --trace=<file>, --metrics / --metrics=<file>
//     (binaries feed their argv through parse_cli_arg)
//   * code:  obs::set_tracing_enabled / obs::set_metrics_enabled
//
// "0" or the empty string disable the corresponding env var. When neither
// facility is enabled every hook in the pipeline reduces to one relaxed
// atomic load and a branch, so output stays byte-identical (see
// tests/test_obs.cpp).

#include <cstddef>
#include <string>
#include <string_view>

#include "leodivide/obs/gate.hpp"
#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"

namespace leodivide::obs {

/// Resolved observability configuration for one process run.
struct Options {
  bool trace = false;
  std::string trace_path = "trace.json";
  bool metrics = false;
  std::string metrics_path;  ///< empty => stdout
};

/// Reads LEODIVIDE_TRACE / LEODIVIDE_METRICS.
[[nodiscard]] Options options_from_env();

/// Consumes `--trace <file>`, `--trace=<file>`, `--metrics`,
/// `--metrics=<file>` at argv[i], advancing i past a separate value
/// argument. Returns true when argv[i] was an observability flag.
bool parse_cli_arg(Options& opts, int argc, char** argv, int& i);

/// Turns the facilities requested in `opts` on (never off, so code-level
/// enables survive).
void apply(const Options& opts);

/// Writes the trace file and/or metrics dump requested in `opts`.
void finalize(const Options& opts);

/// The `"name": total_ms` stage-breakdown object (compact JSON) built from
/// every registered stage timer, name-ordered. "{}" when nothing recorded.
[[nodiscard]] std::string stage_json();

/// One machine-readable bench result line:
///   {"bench": "...", "threads": N, "wall_ms": X[, "stages": {...}]}
/// The "stages" member appears when metrics are enabled and at least one
/// stage timer fired. Built with unbounded strings — long bench names and
/// large stage breakdowns never truncate.
[[nodiscard]] std::string bench_line_json(std::string_view bench,
                                          std::size_t threads, double wall_ms);

}  // namespace leodivide::obs
