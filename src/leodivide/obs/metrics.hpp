#pragma once
// Process-wide metrics registry: monotonic counters, gauges, stage timers
// and fixed-bucket latency histograms. Sharded like runtime/map_reduce:
// every thread writes to its own cache-line-padded shard slot (assigned in
// first-use order) and reads merge the shards *in shard-index order*. All
// merge algebras are unsigned addition, so totals are identical for every
// thread count and schedule — the same determinism contract the runtime
// engine gives the pipeline itself.
//
// Handles returned by the registry stay valid for the life of the process
// (reset_values() zeroes values but never invalidates a handle), so hot
// call sites cache them in function-local statics:
//
//   static obs::Counter& c = obs::registry().counter("demand.locations");
//   c.add(n);   // one relaxed load + branch when metrics are off

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "leodivide/obs/gate.hpp"

namespace leodivide::obs {

/// Number of per-metric shard slots. Threads beyond this many share slots
/// (relaxed fetch_add keeps that correct; sharding is only contention
/// avoidance).
inline constexpr std::size_t kMetricShards = 16;

/// Stable shard index of the calling thread, assigned round-robin on first
/// use.
[[nodiscard]] std::size_t metric_shard_index() noexcept;

namespace detail {
struct alignas(64) ShardSlot {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic counter (sharded unsigned sum).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    slots_[metric_shard_index()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  /// Shard-index-order merge of the slots.
  [[nodiscard]] std::uint64_t total() const noexcept;
  void reset() noexcept;

 private:
  std::array<detail::ShardSlot, kMetricShards> slots_;
};

/// Last-writer-wins gauge for point-in-time values (dataset sizes, thread
/// counts). Not sharded: gauges are set from one place.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Accumulated duration of a named pipeline stage: total nanoseconds plus
/// invocation count. Spans feed these; bench JSON "stages" breakdowns read
/// them.
class Timer {
 public:
  void record_ns(std::uint64_t ns) noexcept {
    if (!metrics_enabled()) return;
    const std::size_t s = metric_shard_index();
    total_ns_[s].value.fetch_add(ns, std::memory_order_relaxed);
    count_[s].value.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t total_ns() const noexcept;
  [[nodiscard]] double total_ms() const noexcept {
    return static_cast<double>(total_ns()) / 1e6;
  }
  void reset() noexcept;

 private:
  std::array<detail::ShardSlot, kMetricShards> total_ns_;
  std::array<detail::ShardSlot, kMetricShards> count_;
};

/// Fixed-bucket latency histogram over microseconds. Bucket 0 holds 0 µs,
/// bucket i (1 <= i < kBuckets-1) holds [2^(i-1), 2^i) µs and the last
/// bucket is the overflow. Power-of-two bounds keep record() branch-free
/// past the enabled gate.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 28;

  void record_us(std::uint64_t us) noexcept {
    if (!metrics_enabled()) return;
    record_always_us(us);
  }
  /// Unconditional record, for call sites that already checked the gate.
  void record_always_us(std::uint64_t us) noexcept;

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t us) noexcept;
  /// Inclusive upper bound of bucket b in µs (the overflow bucket returns
  /// UINT64_MAX).
  [[nodiscard]] static std::uint64_t bucket_upper_us(std::size_t b) noexcept;

  [[nodiscard]] std::array<std::uint64_t, kBuckets> bucket_counts()
      const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum_us() const noexcept;
  void reset() noexcept;

 private:
  std::array<std::array<std::atomic<std::uint64_t>, kBuckets>, kMetricShards>
      buckets_{};
  std::array<detail::ShardSlot, kMetricShards> sum_us_;
};

/// RAII latency probe: on destruction, records the scope's elapsed wall
/// time into a Histogram in microseconds. The clock reads live here in
/// obs/ (the one module the determinism lint exempts from its no-wallclock
/// rule), so deterministic call sites — e.g. the event engine's recompute
/// loop — can take per-scope latency without touching a clock themselves.
/// With metrics off, both constructor and destructor reduce to a relaxed
/// load + branch.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& hist) noexcept;
  ~ScopedLatency();
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_;         ///< null when metrics were off at entry
  std::uint64_t start_ns_;
};

/// Immutable snapshot of every registered metric, in name order.
struct TimerSnapshot {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};
struct HistogramSnapshot {
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
};
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, TimerSnapshot>> timers;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// The process-wide registry. Creation is mutex-protected; recording goes
/// straight to the returned handle with no registry involvement.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every metric value. Handles stay valid.
  void reset_values();

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Flat JSON dump of the snapshot (counters/gauges/timers/histograms).
  void write_json(std::ostream& out, bool pretty = true) const;
  /// CSV dump: type,name,field,value — one row per scalar.
  void write_csv(std::ostream& out) const;

  /// Per-stage totals in milliseconds, name-sorted: the bench "stages"
  /// breakdown.
  [[nodiscard]] std::vector<std::pair<std::string, double>> stage_totals_ms()
      const;

 private:
  MetricsRegistry() = default;
  mutable std::mutex m_;
  // std::map: deterministic name-ordered export; unique_ptr: stable handle
  // addresses across rehash-free growth.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthand for MetricsRegistry::instance().
[[nodiscard]] MetricsRegistry& registry();

}  // namespace leodivide::obs
