#include "leodivide/obs/metrics.hpp"

#include <bit>
#include <ostream>

#include "leodivide/io/json.hpp"
#include "leodivide/obs/trace.hpp"

namespace leodivide::obs {

std::size_t metric_shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

// ----------------------------------------------------------------- Counter --

std::uint64_t Counter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : slots_) sum += s.value.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() noexcept {
  for (auto& s : slots_) s.value.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------- Timer --

std::uint64_t Timer::count() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : count_) sum += s.value.load(std::memory_order_relaxed);
  return sum;
}

std::uint64_t Timer::total_ns() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : total_ns_) {
    sum += s.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Timer::reset() noexcept {
  for (auto& s : total_ns_) s.value.store(0, std::memory_order_relaxed);
  for (auto& s : count_) s.value.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- Histogram --

std::size_t Histogram::bucket_of(std::uint64_t us) noexcept {
  if (us == 0) return 0;
  const auto width = static_cast<std::size_t>(std::bit_width(us));
  return width < kBuckets - 1 ? width : kBuckets - 1;
}

std::uint64_t Histogram::bucket_upper_us(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= kBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << b) - 1;
}

void Histogram::record_always_us(std::uint64_t us) noexcept {
  const std::size_t s = metric_shard_index();
  buckets_[s][bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
  sum_us_[s].value.fetch_add(us, std::memory_order_relaxed);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::bucket_counts()
    const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (const auto& shard : buckets_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      out[b] += shard[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t sum = 0;
  for (std::uint64_t c : bucket_counts()) sum += c;
  return sum;
}

std::uint64_t Histogram::sum_us() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : sum_us_) sum += s.value.load(std::memory_order_relaxed);
  return sum;
}

void Histogram::reset() noexcept {
  for (auto& shard : buckets_) {
    for (auto& b : shard) b.store(0, std::memory_order_relaxed);
  }
  for (auto& s : sum_us_) s.value.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Registry --

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry r;
  return r;
}

MetricsRegistry& registry() { return MetricsRegistry::instance(); }

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(m_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(m_);
  return find_or_create(gauges_, name);
}

Timer& MetricsRegistry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lk(m_);
  return find_or_create(timers_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(m_);
  return find_or_create(histograms_, name);
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, t] : timers_) t->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.emplace_back(name, c->total());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.timers.reserve(timers_.size());
  for (const auto& [name, t] : timers_) {
    s.timers.emplace_back(name, TimerSnapshot{t->count(), t->total_ns()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(
        name, HistogramSnapshot{h->bucket_counts(), h->count(), h->sum_us()});
  }
  return s;
}

void MetricsRegistry::write_json(std::ostream& out, bool pretty) const {
  const MetricsSnapshot s = snapshot();
  io::JsonWriter json(out, pretty);
  json.begin_object();
  json.begin_object("counters");
  for (const auto& [name, v] : s.counters) {
    json.value(name, static_cast<long long>(v));
  }
  json.end_object();
  json.begin_object("gauges");
  for (const auto& [name, v] : s.gauges) {
    json.value(name, static_cast<long long>(v));
  }
  json.end_object();
  json.begin_object("timers");
  for (const auto& [name, t] : s.timers) {
    json.begin_object(name);
    json.value("count", static_cast<long long>(t.count));
    json.value("total_ms", static_cast<double>(t.total_ns) / 1e6);
    json.end_object();
  }
  json.end_object();
  json.begin_object("histograms");
  for (const auto& [name, h] : s.histograms) {
    json.begin_object(name);
    json.value("count", static_cast<long long>(h.count));
    json.value("sum_us", static_cast<long long>(h.sum_us));
    json.begin_array("bucket_upper_us");
    for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
      json.element(static_cast<long long>(Histogram::bucket_upper_us(b)));
    }
    json.element("inf");
    json.end_array();
    json.begin_array("buckets");
    for (std::uint64_t c : h.buckets) {
      json.element(static_cast<long long>(c));
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
  out << '\n';
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const MetricsSnapshot s = snapshot();
  out << "type,name,field,value\n";
  for (const auto& [name, v] : s.counters) {
    out << "counter," << name << ",total," << v << '\n';
  }
  for (const auto& [name, v] : s.gauges) {
    out << "gauge," << name << ",value," << v << '\n';
  }
  for (const auto& [name, t] : s.timers) {
    out << "timer," << name << ",count," << t.count << '\n';
    out << "timer," << name << ",total_ms,"
        << static_cast<double>(t.total_ns) / 1e6 << '\n';
  }
  for (const auto& [name, h] : s.histograms) {
    out << "histogram," << name << ",count," << h.count << '\n';
    out << "histogram," << name << ",sum_us," << h.sum_us << '\n';
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      out << "histogram," << name << ",bucket_";
      if (b + 1 < Histogram::kBuckets) {
        out << "le_" << Histogram::bucket_upper_us(b);
      } else {
        out << "inf";
      }
      out << ',' << h.buckets[b] << '\n';
    }
  }
}

std::vector<std::pair<std::string, double>> MetricsRegistry::stage_totals_ms()
    const {
  const MetricsSnapshot s = snapshot();
  std::vector<std::pair<std::string, double>> out;
  out.reserve(s.timers.size());
  for (const auto& [name, t] : s.timers) {
    out.emplace_back(name, static_cast<double>(t.total_ns) / 1e6);
  }
  return out;
}

ScopedLatency::ScopedLatency(Histogram& hist) noexcept
    : hist_(metrics_enabled() ? &hist : nullptr),
      start_ns_(hist_ != nullptr ? now_ns() : 0) {}

ScopedLatency::~ScopedLatency() {
  if (hist_ == nullptr) return;
  hist_->record_always_us((now_ns() - start_ns_) / 1000);
}

}  // namespace leodivide::obs
