#include "leodivide/obs/obs.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "leodivide/io/json.hpp"

namespace leodivide::obs {

namespace {

// Env value semantics: unset/""/"0" = off, "1" = on with the default sink,
// anything else = on with the value as the output path.
bool env_sink(const char* var, std::string& path) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at obs init; the
  // process never calls setenv, so there is no racing writer.
  const char* v = std::getenv(var);
  if (v == nullptr) return false;
  const std::string s = v;
  if (s.empty() || s == "0") return false;
  if (s != "1") path = s;
  return true;
}

}  // namespace

Options options_from_env() {
  Options opts;
  opts.trace = env_sink("LEODIVIDE_TRACE", opts.trace_path);
  opts.metrics = env_sink("LEODIVIDE_METRICS", opts.metrics_path);
  return opts;
}

bool parse_cli_arg(Options& opts, int argc, char** argv, int& i) {
  const std::string_view arg = argv[i];
  if (arg == "--trace" && i + 1 < argc) {
    opts.trace = true;
    opts.trace_path = argv[++i];
    return true;
  }
  if (arg.rfind("--trace=", 0) == 0) {
    opts.trace = true;
    opts.trace_path = std::string(arg.substr(8));
    return true;
  }
  if (arg == "--metrics") {
    opts.metrics = true;
    return true;
  }
  if (arg.rfind("--metrics=", 0) == 0) {
    opts.metrics = true;
    opts.metrics_path = std::string(arg.substr(10));
    return true;
  }
  return false;
}

void apply(const Options& opts) {
  if (opts.trace) set_tracing_enabled(true);
  if (opts.metrics) set_metrics_enabled(true);
}

void finalize(const Options& opts) {
  if (opts.trace) {
    std::ofstream out(opts.trace_path);
    if (out) {
      TraceRecorder::instance().write_chrome_trace(out);
      std::cerr << "obs: wrote trace to " << opts.trace_path << " ("
                << TraceRecorder::instance().event_count() << " events)\n";
    } else {
      std::cerr << "obs: could not open trace file " << opts.trace_path
                << '\n';
    }
  }
  if (opts.metrics) {
    if (opts.metrics_path.empty()) {
      registry().write_json(std::cout);
    } else {
      std::ofstream out(opts.metrics_path);
      if (out) {
        registry().write_json(out);
        std::cerr << "obs: wrote metrics to " << opts.metrics_path << '\n';
      } else {
        std::cerr << "obs: could not open metrics file " << opts.metrics_path
                  << '\n';
      }
    }
  }
}

std::string stage_json() {
  std::ostringstream os;
  io::JsonWriter json(os, /*pretty=*/false);
  json.begin_object();
  for (const auto& [name, ms] : registry().stage_totals_ms()) {
    json.value(name, ms);
  }
  json.end_object();
  return os.str();
}

std::string bench_line_json(std::string_view bench, std::size_t threads,
                            double wall_ms) {
  std::ostringstream os;
  io::JsonWriter json(os, /*pretty=*/false);
  json.begin_object();
  json.value("bench", bench);
  json.value("threads", static_cast<long long>(threads));
  json.value("wall_ms", wall_ms);
  std::string stages;
  if (metrics_enabled()) {
    stages = stage_json();
  }
  json.end_object();
  std::string line = os.str();
  if (!stages.empty() && stages != "{}") {
    // Splice the pre-rendered stages object in before the closing brace;
    // JsonWriter has no raw-JSON member, and the object is already valid.
    line.pop_back();
    line += ",\"stages\":";
    line += stages;
    line += '}';
  }
  return line;
}

}  // namespace leodivide::obs
