#include "leodivide/event/queue.hpp"

#include <utility>

namespace leodivide::event {

void EventQueue::push(const Event& ev) {
  heap_.push_back(ev);
  sift_up(heap_.size() - 1);
}

Event EventQueue::pop_min() {
  Event min = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return min;
}

void EventQueue::sift_up(std::size_t i) noexcept {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!event_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t smallest = left;
    if (right < n && event_less(heap_[right], heap_[left])) smallest = right;
    if (!event_less(heap_[smallest], heap_[i])) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace leodivide::event
