#include "leodivide/event/engine.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "leodivide/geo/angle.hpp"
#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/orbit/propagate.hpp"
#include "leodivide/runtime/parallel_for.hpp"
#include "leodivide/sim/clock.hpp"
#include "leodivide/sim/coverage.hpp"

namespace leodivide::event {

namespace {

// Coverage-cone threshold for the solver, derived with the scheduler's own
// operation order (sim/scheduler.cpp derive_geometry). The kernel re-derives
// this per epoch from |sat 0|, which jitters at the ulp level over time;
// the solver's eval_slack dominates that jitter by orders of magnitude, so
// deriving once from the t = 0 radius preserves the certificate.
double threshold_cos_psi(double radius_km, double min_elevation_deg) {
  const double alt_km = radius_km - geo::kEarthRadiusKm;
  const double ratio = geo::kEarthRadiusKm / (geo::kEarthRadiusKm + alt_km);
  const double eps = geo::deg2rad(min_elevation_deg);
  return std::cos(std::acos(ratio * std::cos(eps)) - eps);
}

// The scheduler's no-states fallback radius (sim/scheduler.cpp
// first_radius_km): geometry must stay well-defined with zero satellites.
double first_radius_km(const std::vector<orbit::SatState>& sats) {
  return sats.empty() ? geo::kEarthRadiusKm + 550.0
                      : sats.front().ecef_km.norm();
}

obs::Histogram& latency_histogram(EventKind kind) {
  static obs::Histogram& initial =
      obs::registry().histogram("event.latency.initial");
  static obs::Histogram& rise = obs::registry().histogram("event.latency.rise");
  static obs::Histogram& set = obs::registry().histogram("event.latency.set");
  static obs::Histogram& graze =
      obs::registry().histogram("event.latency.graze");
  switch (kind) {
    case EventKind::kRise: return rise;
    case EventKind::kSet: return set;
    case EventKind::kGraze: return graze;
    case EventKind::kInitial: break;
  }
  return initial;
}

}  // namespace

EventSimulation::EventSimulation(sim::SimulationConfig config,
                                 const demand::DemandProfile& profile,
                                 const core::SatelliteCapacityModel& model,
                                 EventConfig event_config)
    : config_(config),
      event_config_(event_config),
      scheduler_(sim::BeamScheduler::cells_from_profile(profile, model,
                                                        config.oversub_target),
                 config.scheduler),
      orbits_(orbit::make_constellation(config.shell)),
      model_(model) {
  if (!(event_config_.window_s > 0.0) || !(event_config_.guard_s > 0.0) ||
      !(event_config_.eval_slack >= 0.0)) {
    throw std::invalid_argument("EventSimulation: bad EventConfig");
  }
}

void EventSimulation::run_trace(runtime::Executor& executor, EventTrace& out) {
  const obs::Span obs_span("event.run");
  const sim::SimClock clock(config_.duration_s, config_.step_s);
  const double duration = config_.duration_s;
  const double guard = event_config_.guard_s;
  const std::vector<sim::SchedCell>& cells = scheduler_.cells();
  const std::size_t n_cells = cells.size();

  out.duration_s = config_.duration_s;
  out.step_s = config_.step_s;
  out.cells_total = n_cells;
  out.events.clear();
  out.segments.clear();
  out.handovers = sim::HandoverStats{};
  out.boundaries = 0;

  // --- Phase 1: certified crossing windows, parallel over cells. -------
  // The solver threshold comes from the same geometry derivation the
  // kernel uses, evaluated at t = 0.
  orbit::propagate_all(orbits_, 0.0, ws_.sched_ws.states);
  const double cos_psi = threshold_cos_psi(
      first_radius_km(ws_.sched_ws.states),
      config_.scheduler.min_elevation_deg);

  const orbit::CrossingConfig crossing_config{event_config_.window_s,
                                              event_config_.eval_slack};
  ws_.solvers.clear();
  ws_.solvers.reserve(orbits_.size());
  for (const orbit::CircularOrbit& orbit : orbits_) {
    ws_.solvers.emplace_back(orbit, cos_psi, crossing_config);
  }

  // resize (not clear) keeps every inner vector's capacity across runs.
  ws_.cell_events.resize(n_cells);
  const std::size_t chunks = runtime::chunk_count(executor, n_cells, 1);
  ws_.crossing_scratch.resize(chunks);
  ws_.crossings.resize(chunks);
  if (n_cells > 0) {
    const obs::Span solve_span("event.solve");
    // Each chunk writes only its own cells' event vectors, so the result
    // is independent of the chunking; ordering enters below, where the
    // queue is seeded serially in cell order. The single-chunk case runs
    // inline (the exact serial code path, and free of the std::function
    // indirection run_tasks needs — which keeps the serial steady state
    // allocation-free).
    const auto solve_chunk = [this, n_cells, chunks, &cells,
                              duration](std::size_t chunk) {
      const runtime::ChunkRange r =
          runtime::chunk_range(0, n_cells, chunks, chunk);
      std::vector<orbit::Crossing>& found = ws_.crossings[chunk];
      orbit::CrossingScratch& scratch = ws_.crossing_scratch[chunk];
      for (std::size_t ci = r.lo; ci < r.hi; ++ci) {
        std::vector<Event>& events = ws_.cell_events[ci];
        events.clear();
        const geo::Vec3 unit = cells[ci].ecef_km.unit();
        for (std::size_t si = 0; si < ws_.solvers.size(); ++si) {
          found.clear();
          ws_.solvers[si].find(unit, 0.0, duration, found, scratch);
          for (const orbit::Crossing& c : found) {
            Event ev;
            ev.time_s = c.window_lo_s;  // ordering key: earliest flip
            ev.window_lo_s = c.window_lo_s;
            ev.window_hi_s = c.window_hi_s;
            ev.kind = !c.certain ? EventKind::kGraze
                      : c.rising ? EventKind::kRise
                                 : EventKind::kSet;
            ev.cell = static_cast<std::uint32_t>(ci);
            ev.sat = static_cast<std::uint32_t>(si);
            events.push_back(ev);
          }
        }
      }
    };
    if (chunks == 1) {
      solve_chunk(0);
    } else {
      executor.run_tasks(chunks, solve_chunk);
    }
  }

  // --- Phase 2: deterministic queue seed + drain into dirty spans. -----
  // Pushes happen serially in cell order, so the queue contents — and by
  // the total order, the pop sequence — never depend on thread count.
  std::size_t total_events = 1;  // the initial-state event
  for (const std::vector<Event>& events : ws_.cell_events) {
    total_events += events.size();
  }
  ws_.queue.clear();
  ws_.queue.reserve(total_events);
  ws_.queue.push(Event{});  // kInitial at t = 0
  for (const std::vector<Event>& events : ws_.cell_events) {
    for (const Event& ev : events) ws_.queue.push(ev);
  }

  if (obs::metrics_enabled()) {
    static obs::Gauge& depth = obs::registry().gauge("event.queue.depth");
    depth.set(static_cast<std::int64_t>(ws_.queue.size()));
  }

  out.events.reserve(total_events);
  ws_.spans.clear();
  std::uint64_t n_rise = 0;
  std::uint64_t n_set = 0;
  std::uint64_t n_graze = 0;
  while (!ws_.queue.empty()) {
    const Event ev = ws_.queue.pop_min();
    out.events.push_back(ev);
    if (ev.kind == EventKind::kInitial) continue;
    if (ev.kind == EventKind::kRise) ++n_rise;
    if (ev.kind == EventKind::kSet) ++n_set;
    if (ev.kind == EventKind::kGraze) ++n_graze;
    double lo = ev.window_lo_s - guard;
    double hi = ev.window_hi_s + guard;
    if (lo < 0.0) lo = 0.0;
    if (hi > duration) hi = duration;
    // Events pop in ascending window_lo order, so a span only ever grows
    // to the right; overlapping or touching windows coalesce.
    if (!ws_.spans.empty() && !(lo > ws_.spans.back().hi)) {
      if (hi > ws_.spans.back().hi) ws_.spans.back().hi = hi;
    } else {
      ws_.spans.push_back({lo, hi, ev.kind});
    }
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& rise = obs::registry().counter("event.count.rise");
    static obs::Counter& set = obs::registry().counter("event.count.set");
    static obs::Counter& graze = obs::registry().counter("event.count.graze");
    rise.add(n_rise);
    set.add(n_set);
    graze.add(n_graze);
  }

  // --- Phase 3: boundary plan. -----------------------------------------
  // Exact recomputes happen at: t = 0; every epoch inside a dirty span
  // (its value may differ from its neighbours'); and the instant just past
  // each span (the certified-constant region's value, reused until the
  // next span). Everything else reuses the schedule of the last boundary
  // at or before it — valid because no span intersects the gap.
  ws_.boundaries.clear();
  ws_.boundaries.push_back({0.0, EventKind::kInitial});
  std::uint64_t epoch_boundaries = 1;
  std::size_t e = 1;
  for (const EventWorkspace::DirtySpan& span : ws_.spans) {
    while (e < clock.epochs() && clock.time_at(e) < span.lo) ++e;
    while (e < clock.epochs() && !(clock.time_at(e) > span.hi)) {
      ws_.boundaries.push_back({clock.time_at(e), span.first_kind});
      ++epoch_boundaries;
      ++e;
    }
    // Post-span boundary, only when a later epoch will reuse it and the
    // span didn't already end exactly on the last boundary pushed.
    if (e < clock.epochs() && ws_.boundaries.back().time_s < span.hi) {
      ws_.boundaries.push_back({span.hi, span.first_kind});
    }
  }

  // --- Phase 4: serial recompute with the exact epoch kernel. ----------
  out.boundaries = ws_.boundaries.size();
  sim::ScheduleResult* prev = &ws_.schedule_a;
  sim::ScheduleResult* cur = &ws_.schedule_b;
  for (std::size_t k = 0; k < ws_.boundaries.size(); ++k) {
    const EventWorkspace::Boundary& boundary = ws_.boundaries[k];
    const obs::ScopedLatency latency(latency_histogram(boundary.kind));
    orbit::propagate_all(orbits_, boundary.time_s, ws_.sched_ws.states);
    scheduler_.schedule(ws_.sched_ws.states, ws_.sched_ws, *cur);
    const bool changed = k == 0 || !(*cur == *prev);
    if (changed) {
      if (!out.segments.empty()) {
        out.segments.back().end_s = boundary.time_s;
        out.handovers +=
            compare_schedules(*prev, *cur, n_cells, ws_.handover_scratch);
      }
      CoverageSegment segment;
      segment.begin_s = boundary.time_s;
      segment.end_s = duration;
      segment.coverage = sim::summarize_epoch(*cur, n_cells, boundary.time_s,
                                              ws_.sched_ws.sat_dedup);
      sim::compute_qos(cells, *cur, model_, config_.scheduler,
                       config_.oversub_target, ws_.qos_cells);
      segment.qos = sim::summarize_qos(ws_.qos_cells);
      out.segments.push_back(segment);
      std::swap(prev, cur);
    }
  }

  if (obs::metrics_enabled()) {
    static obs::Counter& recomputed =
        obs::registry().counter("event.epochs.recomputed");
    static obs::Counter& reused =
        obs::registry().counter("event.epochs.reused");
    recomputed.add(epoch_boundaries);
    reused.add(clock.epochs() - epoch_boundaries);
  }
}

EventTrace EventSimulation::run_trace(runtime::Executor& executor) {
  EventTrace out;
  run_trace(executor, out);
  return out;
}

std::vector<sim::EpochCoverage> EventSimulation::run(
    runtime::Executor& executor) {
  run_trace(executor, ws_.trace);
  return sample_epochs(ws_.trace);
}

std::vector<sim::EpochCoverage> EventSimulation::run() {
  return run(runtime::global_executor());
}

std::vector<sim::EpochCoverage> run_simulation(
    const sim::SimulationConfig& config, const demand::DemandProfile& profile,
    const core::SatelliteCapacityModel& model, runtime::Executor& executor) {
  if (config.engine == sim::Engine::kEvent) {
    EventSimulation simulation(config, profile, model);
    return simulation.run(executor);
  }
  const sim::Simulation simulation(config, profile, model);
  return simulation.run(executor);
}

}  // namespace leodivide::event
