#include "leodivide/event/trace.hpp"

#include <stdexcept>

#include "leodivide/sim/clock.hpp"

namespace leodivide::event {

void sample_epochs(const EventTrace& trace,
                   std::vector<sim::EpochCoverage>& out) {
  if (trace.segments.empty()) {
    throw std::invalid_argument("sample_epochs: trace has no segments");
  }
  const sim::SimClock clock(trace.duration_s, trace.step_s);
  out.resize(clock.epochs());
  // Epoch times and segment starts are both ascending, so one forward
  // pointer suffices. An epoch exactly on a segment start belongs to that
  // segment (its schedule was computed at that very instant); the strict
  // `<` probe below encodes that without any float equality test.
  std::size_t seg = 0;
  const std::size_t last = trace.segments.size() - 1;
  for (std::size_t e = 0; e < clock.epochs(); ++e) {
    const double t = clock.time_at(e);
    while (seg < last && !(t < trace.segments[seg + 1].begin_s)) ++seg;
    out[e] = trace.segments[seg].coverage;
    out[e].time_s = t;
  }
}

std::vector<sim::EpochCoverage> sample_epochs(const EventTrace& trace) {
  std::vector<sim::EpochCoverage> out;
  sample_epochs(trace, out);
  return out;
}

}  // namespace leodivide::event
