#pragma once
// The discrete-event vocabulary of the event-driven simulator core: typed
// satellite rise/set and near-tangent graze events per (cell, satellite)
// pair, with a *stable total order* on (time, kind, cell, sat) so queue
// execution — and therefore every downstream trace — is byte-reproducible
// at any thread count. The comparator never tests floating-point equality:
// ties on time fall through to the integer fields via two strict `<`
// probes, which is both deterministic and clean under the float-eq
// determinism lint rule.

#include <cstdint>
#include <string_view>

namespace leodivide::event {

/// What happened at an event. The numeric order is part of the queue's
/// total order (initial state sorts before a rise at the same instant,
/// rises before sets, sets before grazes).
enum class EventKind : std::uint8_t {
  kInitial = 0,  ///< the t = 0 seeding of the contact set
  kRise = 1,     ///< satellite enters the cell's coverage cone
  kSet = 2,      ///< satellite leaves the cell's coverage cone
  kGraze = 3,    ///< near-tangent pass; sign change unresolved
};

/// Human-readable kind name ("initial", "rise", "set", "graze").
[[nodiscard]] constexpr std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kInitial: return "initial";
    case EventKind::kRise: return "rise";
    case EventKind::kSet: return "set";
    case EventKind::kGraze: return "graze";
  }
  return "unknown";
}

/// One scheduled event. [window_lo_s, window_hi_s] is the certified
/// bracket within which every visibility flip of the pair occurs; `time_s`
/// is the ordering key and equals the window's lower edge — the earliest
/// instant the transition can take effect — so draining the queue yields
/// windows in ascending start order, which is what the engine's dirty-span
/// merge requires.
struct Event {
  double time_s = 0.0;
  double window_lo_s = 0.0;
  double window_hi_s = 0.0;
  EventKind kind = EventKind::kInitial;
  std::uint32_t cell = 0;
  std::uint32_t sat = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// The queue's strict weak (in fact total) order: ascending (time, kind,
/// cell, sat). Distinct events never compare equivalent, so heap pop order
/// is a pure function of the queue's contents.
[[nodiscard]] constexpr bool event_less(const Event& a,
                                        const Event& b) noexcept {
  if (a.time_s < b.time_s) return true;
  if (b.time_s < a.time_s) return false;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.cell != b.cell) return a.cell < b.cell;
  return a.sat < b.sat;
}

}  // namespace leodivide::event
