#pragma once
// The event-driven simulator core. Where the epoch kernel recomputes the
// full beam schedule at every fixed step, this engine:
//
//   1. solves, per satellite x cell, the certified cos-threshold crossing
//      windows over the whole horizon (orbit/crossing.hpp),
//   2. funnels them through a deterministic priority queue ordered by
//      (time, kind, cell, sat) — pop order is a pure function of the
//      event set, independent of how many threads computed it,
//   3. merges the drained windows into "dirty spans" and recomputes the
//      schedule with the *exact epoch kernel* only at span boundaries,
//      reusing the previous result everywhere the visibility graph is
//      certified constant.
//
// Because the greedy schedule is a deterministic function of the boolean
// visibility graph plus integer budgets, and the solver certifies the
// graph constant between windows (with a Lipschitz bound and an evaluation
// slack that dominates float noise between the analytic g(t) and the
// kernel's own dot products), the sampled trace is byte-identical to the
// epoch kernel's at every shared timestamp — proven by the golden
// equivalence suite — while the work scales with contact dynamics instead
// of step count. The same recompute discipline yields exact handover and
// QoS accounting at event resolution as a byproduct (event/trace.hpp).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "leodivide/event/event.hpp"
#include "leodivide/event/queue.hpp"
#include "leodivide/event/trace.hpp"
#include "leodivide/orbit/crossing.hpp"
#include "leodivide/sim/handover.hpp"
#include "leodivide/sim/qos.hpp"
#include "leodivide/sim/simulation.hpp"
#include "leodivide/sim/workspace.hpp"

namespace leodivide::runtime {
class Executor;
}

namespace leodivide::event {

/// Event-engine tuning. The defaults keep the determinism contract; they
/// only trade solver work for window width.
struct EventConfig {
  /// Crossing windows are refined to at most this width [s].
  double window_s = 1e-3;
  /// Root-free certificates require the endpoint-magnitude sum to exceed
  /// L * width + eval_slack. Must dominate the float noise between the
  /// solver's analytic evaluation and the scheduler's dot products
  /// (~1e-14); the default leaves two orders of magnitude of margin.
  double eval_slack = 1e-11;
  /// Dirty spans are widened by this much on both sides [s] before the
  /// reuse decision, so a crossing exactly on a window edge can never be
  /// attributed to the certified side.
  double guard_s = 1e-6;
};

/// Reusable state for the event engine. One instance per engine; after the
/// first run warms every buffer, subsequent runs of the same configuration
/// perform no steady-state heap allocation (pinned by tests/test_event.cpp).
struct EventWorkspace {
  /// One merged dirty interval; `first_kind` is the kind of the event that
  /// opened it (the latency-histogram key for its recomputes).
  struct DirtySpan {
    double lo = 0.0;
    double hi = 0.0;
    EventKind first_kind = EventKind::kInitial;
  };
  /// One exact-recompute instant.
  struct Boundary {
    double time_s = 0.0;
    EventKind kind = EventKind::kInitial;
  };

  std::vector<orbit::ConeCrossingSolver> solvers;  ///< one per satellite
  std::vector<std::vector<Event>> cell_events;     ///< per-cell, pre-queue
  std::vector<orbit::CrossingScratch> crossing_scratch;  ///< per chunk
  std::vector<std::vector<orbit::Crossing>> crossings;   ///< per chunk
  EventQueue queue;
  std::vector<DirtySpan> spans;
  std::vector<Boundary> boundaries;
  sim::ScheduleWorkspace sched_ws;
  sim::ScheduleResult schedule_a;
  sim::ScheduleResult schedule_b;
  std::vector<sim::CellQos> qos_cells;
  sim::HandoverScratch handover_scratch;
  EventTrace trace;  ///< run()'s backing trace, reused across runs
};

/// Event-driven counterpart of sim::Simulation: same inputs, same sampled
/// output bytes. Methods are non-const because runs reuse the engine's
/// workspace; an engine must not be driven from two threads at once (the
/// parallelism lives *inside* a run).
class EventSimulation {
 public:
  /// Mirrors sim::Simulation's constructor; `event_config` adds the
  /// engine-only knobs. Throws std::invalid_argument on non-positive
  /// window/guard or negative slack.
  EventSimulation(sim::SimulationConfig config,
                  const demand::DemandProfile& profile,
                  const core::SatelliteCapacityModel& model = {},
                  EventConfig event_config = {});

  /// Runs the event loop and writes the piecewise-constant trace into
  /// `out` (cleared first; its capacity is reused). Crossing solving is
  /// parallel over cells on `executor`; queue drain and schedule
  /// recomputation are a single deterministic serial pass, so the trace is
  /// byte-identical at every thread count.
  void run_trace(runtime::Executor& executor, EventTrace& out);

  /// As above, returning a fresh trace.
  [[nodiscard]] EventTrace run_trace(runtime::Executor& executor);

  /// Runs and samples the trace onto the fixed-step epoch grid:
  /// byte-identical to sim::Simulation::run for the same configuration.
  [[nodiscard]] std::vector<sim::EpochCoverage> run(
      runtime::Executor& executor);

  /// As above, on the process-global executor (LEODIVIDE_THREADS).
  [[nodiscard]] std::vector<sim::EpochCoverage> run();

  [[nodiscard]] const sim::SimulationConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const EventConfig& event_config() const noexcept {
    return event_config_;
  }
  [[nodiscard]] const sim::BeamScheduler& scheduler() const noexcept {
    return scheduler_;
  }

 private:
  sim::SimulationConfig config_;
  EventConfig event_config_;
  sim::BeamScheduler scheduler_;
  std::vector<orbit::CircularOrbit> orbits_;
  core::SatelliteCapacityModel model_;
  EventWorkspace ws_;
};

/// Engine dispatch: runs `config` with the core selected by
/// `config.engine` (sim::Engine::kEpoch -> sim::Simulation,
/// sim::Engine::kEvent -> EventSimulation). Both return byte-identical
/// traces; the switch only chooses how the bytes are computed.
[[nodiscard]] std::vector<sim::EpochCoverage> run_simulation(
    const sim::SimulationConfig& config, const demand::DemandProfile& profile,
    const core::SatelliteCapacityModel& model, runtime::Executor& executor);

}  // namespace leodivide::event
