#pragma once
// The event engine's output: a piecewise-constant coverage trace. Instead
// of one `EpochCoverage` per fixed step, the trace records one
// `CoverageSegment` per interval over which the beam schedule is provably
// constant, the full list of drained events, and *exact* handover totals
// (accumulated at segment boundaries, i.e. at event resolution rather
// than step resolution). `sample_epochs` projects the trace back onto the
// fixed-step grid, byte-identical to what the epoch kernel would have
// produced — the golden-equivalence contract.

#include <cstdint>
#include <vector>

#include "leodivide/event/event.hpp"
#include "leodivide/sim/coverage.hpp"
#include "leodivide/sim/handover.hpp"
#include "leodivide/sim/qos.hpp"

namespace leodivide::event {

/// One maximal interval [begin_s, end_s) over which the schedule — and
/// therefore coverage and QoS — is constant. `coverage.time_s` equals
/// `begin_s` (the instant the segment's schedule was computed exactly).
struct CoverageSegment {
  double begin_s = 0.0;
  double end_s = 0.0;
  sim::EpochCoverage coverage;
  sim::QosSummary qos;

  friend bool operator==(const CoverageSegment&, const CoverageSegment&) =
      default;
};

/// A complete event-driven run. `events` is every drained queue entry in
/// pop order; `segments` partition [0, duration_s]; `handovers` are the
/// exact accumulated churn totals across all segment transitions;
/// `boundaries` counts exact schedule recomputations (the engine's work
/// metric — compare against the epoch count for the reuse ratio).
struct EventTrace {
  double duration_s = 0.0;
  double step_s = 0.0;
  std::uint64_t cells_total = 0;
  std::vector<Event> events;
  std::vector<CoverageSegment> segments;
  sim::HandoverStats handovers;
  std::uint64_t boundaries = 0;

  friend bool operator==(const EventTrace&, const EventTrace&) = default;
};

/// Projects the trace onto the fixed-step epoch grid of
/// SimClock(duration_s, step_s): epoch e takes the coverage of the segment
/// containing its timestamp, with `time_s` rewritten to the epoch time.
/// Byte-identical to the epoch kernel's trace for the same configuration.
/// Throws std::invalid_argument if the trace has no segments.
[[nodiscard]] std::vector<sim::EpochCoverage> sample_epochs(
    const EventTrace& trace);

/// As above, writing into caller-owned `out` (resized to the epoch count);
/// repeated calls at warm capacity perform no heap allocation.
void sample_epochs(const EventTrace& trace,
                   std::vector<sim::EpochCoverage>& out);

}  // namespace leodivide::event
