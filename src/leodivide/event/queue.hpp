#pragma once
// Deterministic priority queue of simulation events. A hand-rolled binary
// min-heap over `event_less`: pop order is a pure function of the set of
// pushed events (the comparator is a total order, so no two distinct
// events ever tie), and all storage is caller-reservable so the steady
// state of the event loop performs no heap allocation.

#include <cstddef>
#include <vector>

#include "leodivide/event/event.hpp"

namespace leodivide::event {

/// Binary min-heap of events ordered by `event_less`. Not thread-safe;
/// the engine funnels all pushes through a single deterministic serial
/// pass, which is what makes the execution order thread-count invariant.
class EventQueue {
 public:
  /// Pre-size the backing store; push() below capacity never allocates.
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Drop all events, keeping capacity.
  void clear() noexcept { heap_.clear(); }

  /// Smallest event under `event_less`. Precondition: !empty().
  [[nodiscard]] const Event& top() const noexcept { return heap_.front(); }

  void push(const Event& ev);

  /// Removes and returns the smallest event. Precondition: !empty().
  Event pop_min();

 private:
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  std::vector<Event> heap_;
};

}  // namespace leodivide::event
