// Ablation: the paper's analytic lower-bound sizing vs an operational
// time-stepped beam scheduler over a propagated Walker shell.
//
// Two experiments:
//   (a) Validate the latitude-density model against the propagated shell —
//       the analytic rho(phi) the sizing formula inverts.
//   (b) Scale the shell and measure achieved cell coverage of the greedy
//       scheduler on a reduced national profile; the analytic model's
//       satellite requirement should bracket where coverage saturates.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/orbit/density.hpp"
#include "leodivide/sim/maxflow.hpp"
#include "leodivide/sim/simulation.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Ablation (a): analytic vs propagated satellite density");

  const orbit::WalkerShell shell = orbit::starlink_shell1();
  const auto empirical = orbit::empirical_density_per_km2(shell, 400, 36);
  io::TextTable dtable;
  dtable.set_header({"latitude band", "analytic (sats/Mkm^2)",
                     "propagated (sats/Mkm^2)", "err"});
  for (int band = 0; band < 36; ++band) {
    const double lat = -90.0 + (band + 0.5) * 5.0;
    // Northern covered bands only; the band straddling the 53-degree
    // inclination limit is skipped (the analytic density diverges there).
    if (lat < 0.0 || lat > 50.0) continue;
    const double analytic =
        orbit::surface_density_per_km2(shell.total_sats(), lat, 53.0) * 1e6;
    const double measured = empirical[static_cast<std::size_t>(band)] * 1e6;
    dtable.add_row({io::fmt(lat - 2.5, 0) + ".." + io::fmt(lat + 2.5, 0),
                    io::fmt(analytic, 3), io::fmt(measured, 3),
                    analytic > 0.0 ? bench::rel_err(measured, analytic)
                                   : "n/a"});
  }
  std::cout << dtable.render() << '\n';

  bench::banner("Ablation (b): greedy scheduler coverage vs shell size");
  // Full national profile: the beam shortfall only appears at full demand
  // density (a sparse subsample fits easily in any shell's beam budget).
  const auto& profile = bench::national_profile();
  std::cout << "profile: " << profile.cell_count() << " cells, "
            << io::fmt_count(static_cast<long long>(
                   profile.total_locations()))
            << " locations (full scale)\n\n";

  io::TextTable stable;
  stable.set_header({"shell", "satellites", "mean cell coverage",
                     "min cell coverage", "mean beam util",
                     "sats serving US"});
  const orbit::WalkerShell shells[] = {
      {53.0, 550.0, 24, 11, 1},   // 264
      {53.0, 550.0, 36, 15, 1},   // 540
      {53.0, 550.0, 72, 22, 1},   // 1584 (Starlink shell 1)
      {53.0, 550.0, 108, 30, 1},  // 3240
      {53.0, 550.0, 144, 44, 1},  // 6336
  };
  for (const auto& s : shells) {
    sim::SimulationConfig config;
    config.shell = s;
    config.duration_s = 240.0;
    config.step_s = 120.0;
    config.scheduler.beamspread = 5;
    const auto report = sim::Simulation(config, profile).run_report();
    stable.add_row({s.to_string(), io::fmt_count(s.total_sats()),
                    io::fmt(report.mean_cell_coverage, 3),
                    io::fmt(report.min_cell_coverage, 3),
                    io::fmt(report.mean_beam_utilization, 3),
                    io::fmt(report.mean_satellites_in_view, 1)});
  }
  std::cout << stable.render() << '\n';

  bench::banner("Ablation (c): greedy strategies vs the max-flow bound");
  // One epoch, shell 1, full profile: compare the three greedy selection
  // strategies against the exact fractional optimum (Dinic max-flow on
  // beam slots) — how much of the shortfall is algorithmic vs fundamental?
  {
    const auto orbits = orbit::make_constellation(orbit::starlink_shell1());
    const auto states = orbit::propagate_all(orbits, 300.0);
    const core::SatelliteCapacityModel capacity;
    const auto cells =
        sim::BeamScheduler::cells_from_profile(profile, capacity, 20.0);

    sim::SchedulerConfig config;
    config.beamspread = 5;
    const auto bound = sim::optimal_slot_bound(cells, states, config);

    io::TextTable stratt;
    stratt.set_header({"allocator", "cells served", "locations served",
                       "slot coverage"});
    const struct {
      const char* name;
      sim::Strategy strategy;
    } strategies[] = {{"greedy most-slack", sim::Strategy::kMostSlack},
                      {"greedy first-fit", sim::Strategy::kFirstFit},
                      {"greedy best-fit", sim::Strategy::kBestFit}};
    for (const auto& s : strategies) {
      sim::SchedulerConfig sc = config;
      sc.strategy = s.strategy;
      const sim::BeamScheduler scheduler(cells, sc);
      const auto r = scheduler.schedule(states);
      // Served slots under the same accounting as the flow bound: whole
      // beams cost beams * beamspread slots, shared assignments one slot.
      std::int64_t slots = 0;
      for (const auto& a : r.assignments) {
        slots += cells[a.cell].beams_needed >= 2
                     ? static_cast<std::int64_t>(
                           cells[a.cell].beams_needed) * config.beamspread
                     : 1;
      }
      stratt.add_row({s.name,
                      io::fmt_count(static_cast<long long>(
                          r.assignments.size())),
                      io::fmt_count(static_cast<long long>(
                          r.locations_served)),
                      io::fmt(static_cast<double>(slots) /
                                  static_cast<double>(bound.slots_demanded),
                              3)});
    }
    stratt.add_row({"max-flow optimum (fractional)", "-", "-",
                    io::fmt(bound.slot_coverage, 3)});
    std::cout << stratt.render() << '\n';
    std::cout << "The gap between every greedy variant and the max-flow "
                 "optimum is small: the shortfall is fundamental (beam "
                 "budget x visibility), not an artefact of greedy "
                 "allocation.\n\n";
  }

  std::cout
      << "Reading: the Gen1 shell (1,584 satellites) covers only a small "
         "fraction of the demand cells, and coverage grows with shell size "
         "— the paper's P1/P2 story, observed operationally. The simulator "
         "saturates sooner than the analytic Table-2 sizes because a cell "
         "may be served by ANY satellite within its ~940 km footprint "
         "radius (load spreads across neighbours), whereas the paper's "
         "lower bound conservatively assigns each satellite a disjoint "
         "1 + (24-b)*s cell neighbourhood. The two agree on the headline: "
         "thousands of additional satellites are needed for full US "
         "coverage at acceptable oversubscription.\n";
  leodivide::bench::emit_json_line("ablation_beam_scheduler", timer.elapsed_ms());
  return 0;
}
