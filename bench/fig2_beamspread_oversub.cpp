// Figure 2: fraction of US cells served as a function of beamspread
// (y-axis, 2..14) and oversubscription factor (x-axis, 5..30). The paper
// renders this as a heatmap with the colorbar spanning ~0.36 to ~0.99.

#include <iostream>

#include "bench_common.hpp"
#include "leodivide/core/served_fraction.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Figure 2: fraction of US cells served");

  const core::SatelliteCapacityModel model;
  const auto& profile = bench::national_profile();

  const std::vector<double> spreads{2, 4, 6, 8, 10, 12, 14};
  const std::vector<double> oversubs{5, 10, 15, 20, 25, 30};
  const auto grid =
      core::served_fraction_grid(profile, model, spreads, oversubs);

  io::TextTable table;
  std::vector<std::string> header{"beamspread \\ oversub"};
  for (double o : oversubs) header.push_back(io::fmt(o, 0));
  table.set_header(std::move(header));
  for (std::size_t i = 0; i < spreads.size(); ++i) {
    std::vector<std::string> row{io::fmt(spreads[i], 0)};
    for (double v : grid[i]) row.push_back(io::fmt(v, 3));
    table.add_row(std::move(row));
  }
  std::cout << table.render() << '\n';

  // The paper's colorbar extremes and the FCC-cap column.
  io::TextTable anchors;
  anchors.set_header({"Anchor", "Paper", "Measured", "Rel. err"});
  const double lo = grid.back().front();    // beamspread 14, oversub 5
  const double hi = grid.front().back();    // beamspread 2, oversub 30
  anchors.add_row({"min of grid (s=14, o=5)", "~0.36", io::fmt(lo, 3),
                   bench::rel_err(lo, 0.36)});
  anchors.add_row({"max of grid (s=2, o=30)", "~0.99", io::fmt(hi, 3),
                   bench::rel_err(hi, 0.99)});
  const double at_cap =
      core::served_cell_fraction(profile, model, 2.0, 20.0);
  anchors.add_row({"s=2 at the FCC 20:1 cap", "~0.99", io::fmt(at_cap, 3),
                   bench::rel_err(at_cap, 0.99)});
  std::cout << anchors.render() << '\n';

  // Monotonicity statement the figure makes visually: to cover all cells,
  // adopt low beamspread with adequately high oversubscription.
  std::cout << "Cells fully covered requires low beamspread + high oversub: "
            << "served(s=2, o=30) = " << io::fmt(hi, 3)
            << " vs served(s=14, o=5) = " << io::fmt(lo, 3) << '\n';
  leodivide::bench::emit_json_line("fig2_beamspread_oversub", timer.elapsed_ms());
  return 0;
}
