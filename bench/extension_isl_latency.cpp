// Extension: latency and ISL reachability. Section 2.1 motivates LEO by
// the ~33,000 km orbit-height gap to GEO; Section 2.2 notes satellites
// reach the Internet either bent-pipe or over inter-satellite links. This
// bench quantifies both: the LEO/GEO latency gap, and how many ISL hops a
// satellite needs to reach a gateway-connected peer as the gateway count
// varies.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "leodivide/orbit/footprint.hpp"
#include "leodivide/orbit/isl.hpp"
#include "leodivide/stats/rng.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Extension: bent-pipe latency, LEO vs GEO");

  io::TextTable lat;
  lat.set_header({"architecture", "UT slant (km)", "GW slant (km)",
                  "one-way (ms)", "RTT (ms)"});
  const struct {
    const char* name;
    double ut_km;
    double gw_km;
  } rows[] = {
      {"LEO 550 km, overhead", 550.0, 550.0},
      {"LEO 550 km, edge of footprint (25 deg)", 1123.0, 1123.0},
      {"GEO 35,786 km", 35786.0, 35786.0},
  };
  for (const auto& r : rows) {
    const double one_way = orbit::bent_pipe_delay_ms(r.ut_km, r.gw_km);
    lat.add_row({r.name, io::fmt(r.ut_km, 0), io::fmt(r.gw_km, 0),
                 io::fmt(one_way, 2), io::fmt(2.0 * one_way, 2)});
  }
  std::cout << lat.render() << '\n';

  bench::banner("Extension: ISL hops to the nearest gateway-connected sat");
  const orbit::WalkerShell shell = orbit::starlink_shell1();
  const orbit::IslGrid grid(shell);
  std::cout << "shell " << shell.to_string() << ", +grid ISLs; intra-plane "
               "link length "
            << io::fmt(grid.intra_plane_link_km(), 0) << " km ("
            << io::fmt(orbit::propagation_delay_ms(
                           grid.intra_plane_link_km()),
                       2)
            << " ms per hop)\n\n";

  io::TextTable hops;
  hops.set_header({"gateway-connected sats", "mean hops", "max hops",
                   "mean extra latency (ms)"});
  stats::Pcg32 rng(2024);
  for (std::uint32_t gateways : {8U, 16U, 32U, 64U, 128U, 256U}) {
    // Random gateway-connected subset (deterministic seed).
    std::vector<std::uint32_t> sources;
    while (sources.size() < gateways) {
      const std::uint32_t s = rng.next_below(grid.size());
      if (std::find(sources.begin(), sources.end(), s) == sources.end()) {
        sources.push_back(s);
      }
    }
    const auto dist = grid.hops_to_nearest(sources);
    double sum = 0.0;
    std::uint32_t mx = 0;
    for (std::uint32_t d : dist) {
      sum += d;
      mx = std::max(mx, d);
    }
    const double mean = sum / static_cast<double>(dist.size());
    hops.add_row({io::fmt_count(gateways), io::fmt(mean, 2),
                  io::fmt_count(mx),
                  io::fmt(mean * orbit::propagation_delay_ms(
                                     grid.intra_plane_link_km()),
                          2)});
  }
  std::cout << hops.render() << '\n';

  std::cout << "Reading: LEO's bent-pipe RTT is two orders of magnitude "
               "below GEO's — the performance story that makes LEO a "
               "credible broadband substitute (Section 2.1). With ISLs, a "
               "few dozen gateway-connected satellites keep every "
               "satellite within a handful of ~6.6 ms hops, so coverage "
               "(not backhaul reachability) remains the binding "
               "constraint the paper analyses.\n";
  leodivide::bench::emit_json_line("extension_isl_latency", timer.elapsed_ms());
  return 0;
}
