// Figure 4 / Finding F4: un- and underserved locations unable to afford
// service as a function of the acceptable proportion of household income,
// for the paper's four plans.

#include <cmath>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "leodivide/afford/affordability.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Figure 4: locations unable to afford service");

  const afford::AffordabilityAnalyzer analyzer(bench::national_profile());

  // The four curves sampled on a common x-grid.
  const auto plans = afford::paper_plans();
  io::TextTable curves;
  std::vector<std::string> header{"proportion of income"};
  for (const auto& p : plans) header.push_back(p.name);
  curves.set_header(std::move(header));
  for (double x : {0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045,
                   0.05}) {
    std::vector<std::string> row{io::fmt(x, 3)};
    for (const auto& p : plans) {
      row.push_back(io::fmt_count(
          std::llround(analyzer.evaluate(p, x).locations_unable)));
    }
    curves.add_row(std::move(row));
  }
  std::cout << curves.render() << '\n';

  // Paper-annotated quantities.
  io::TextTable table;
  table.set_header({"Quantity", "Paper", "Measured", "Rel. err"});
  const auto starlink = analyzer.evaluate(afford::starlink_residential());
  const auto lifeline =
      analyzer.evaluate(afford::starlink_residential_lifeline());
  const auto xfinity = analyzer.evaluate(afford::xfinity_300());
  const auto spectrum = analyzer.evaluate(afford::spectrum_premier());
  table.add_row({"unable @2%, Starlink $120", "~3.5M",
                 io::fmt_count(std::llround(starlink.locations_unable)),
                 bench::rel_err(starlink.locations_unable, 3.48e6)});
  table.add_row({"fraction unable, Starlink $120", "74.5%",
                 io::fmt_pct(starlink.fraction_unable, 1),
                 bench::rel_err(starlink.fraction_unable, 0.745)});
  table.add_row({"unable @2%, w/ Lifeline $110.75", "~3.0M",
                 io::fmt_count(std::llround(lifeline.locations_unable)),
                 bench::rel_err(lifeline.locations_unable, 2.97e6)});
  std::string income_needed = "$";
  income_needed += io::fmt_count(std::llround(lifeline.income_required_usd));
  table.add_row({"income needed, Starlink + Lifeline", "$66,450",
                 income_needed,
                 bench::rel_err(lifeline.income_required_usd, 66450.0)});
  table.add_row({"fraction unable, Xfinity $40", "<0.01%",
                 io::fmt_pct(xfinity.fraction_unable, 4), ""});
  table.add_row({"fraction unable, Spectrum $50", "<0.01%",
                 io::fmt_pct(spectrum.fraction_unable, 4), ""});
  table.add_row({"curve end, Starlink $120", "0.050",
                 io::fmt(analyzer.curve_end(afford::starlink_residential()),
                         3),
                 bench::rel_err(
                     analyzer.curve_end(afford::starlink_residential()),
                     0.050)});
  table.add_row(
      {"curve end, w/ Lifeline", "0.046",
       io::fmt(analyzer.curve_end(afford::starlink_residential_lifeline()),
               3),
       bench::rel_err(
           analyzer.curve_end(afford::starlink_residential_lifeline()),
           0.046)});
  std::cout << table.render() << '\n';

  std::cout << "F4: "
            << io::fmt(starlink.locations_unable / 1e6, 1) << "M of "
            << io::fmt(analyzer.income().total_locations() / 1e6, 1)
            << "M un(der)served locations cannot afford Starlink's "
               "Residential plan at the 2% income rule; comparable plans "
               "from other ISPs are affordable for > 99.99% of these "
               "locations.\n";
  leodivide::bench::emit_json_line("fig4_affordability", timer.elapsed_ms());
  return 0;
}
