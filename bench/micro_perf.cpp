// google-benchmark microbenchmarks for the library's hot paths: hex
// indexing, orbital propagation, visibility, demand aggregation and the
// sizing sweep. With `--threads N` it instead runs the parallel-scaling
// harness: aggregate >= 5M synthetic locations serially and on an
// N-thread pool, check the outputs are byte-identical, and report the
// speedup as JSON lines. With `--sim-schedule` it runs the scheduling
// kernel comparison: indexed (VisIndex) vs naive full scan over a
// cells x sats sweep, verifying byte-identical results and emitting
// {"bench":"sim.schedule",...} JSON lines that tools/bench_check.py
// gates against BENCH_sim.json. With `--sim-event` it compares the
// event-driven engine against fixed-epoch stepping on multi-day
// horizons, verifies byte-identical epoch traces, and emits
// {"bench":"sim.event",...} lines gated against BENCH_event.json. With
// `--market` it runs the three-operator default market serially and on a
// three-thread pool, verifies the reports byte-identical, and emits
// {"bench":"market.operators",...} lines gated against BENCH_market.json.
// With `--graph` it runs the task-graph pipeline comparison — K
// independent scenario chains sequentially with synchronous snapshot
// stores vs TaskGraph-scheduled on a pool with stores offloaded to the
// async I/O thread — plus the SIMD visibility/rotation kernels against
// their retained scalar twins, all byte-identity-checked before timing,
// emitting {"bench":"graph",...} lines gated against BENCH_graph.json.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "leodivide/geo/angle.hpp"
#include "leodivide/runtime/task_graph.hpp"
#include "leodivide/runtime/thread_pool.hpp"

#include "leodivide/core/longtail.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/aggregate.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/event/engine.hpp"
#include "leodivide/hex/polyfill.hpp"
#include "leodivide/hex/traversal.hpp"
#include "leodivide/orbit/kernels.hpp"
#include "leodivide/orbit/propagate.hpp"
#include "leodivide/orbit/visibility.hpp"
#include "leodivide/orbit/walker.hpp"
#include "leodivide/hex/compact.hpp"
#include "leodivide/orbit/isl.hpp"
#include "leodivide/orbit/tle.hpp"
#include "leodivide/afford/affordability.hpp"
#include "leodivide/core/served_fraction.hpp"
#include "leodivide/market/simulation.hpp"
#include "leodivide/serve/incremental.hpp"
#include "leodivide/serve/session.hpp"
#include "leodivide/sim/maxflow.hpp"
#include "leodivide/sim/scheduler.hpp"
#include "leodivide/sim/simulation.hpp"
#include "leodivide/sim/workspace.hpp"
#include "leodivide/snapshot/snapshot.hpp"
#include "leodivide/stats/distributions.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <thread>

namespace {

using namespace leodivide;

const demand::DemandProfile& profile_2pct() {
  static const demand::DemandProfile p =
      demand::SyntheticGenerator({.seed = 1, .scale = 0.02})
          .generate_profile();
  return p;
}

void BM_HexCellOf(benchmark::State& state) {
  const hex::HexGrid grid;
  stats::Pcg32 rng(7);
  for (auto _ : state) {
    const geo::GeoPoint p{25.0 + 24.0 * rng.next_double(),
                          -124.0 + 57.0 * rng.next_double()};
    benchmark::DoNotOptimize(grid.cell_of(p, 5));
  }
}
BENCHMARK(BM_HexCellOf);

void BM_HexDisk(benchmark::State& state) {
  const hex::CellId center(5, {100, -50});
  for (auto _ : state) {
    benchmark::DoNotOptimize(hex::disk(center, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_HexDisk)->Arg(1)->Arg(5)->Arg(20);

void BM_PolyfillBox(benchmark::State& state) {
  const hex::HexGrid grid;
  const geo::BoundingBox box{38.0, 41.0, -100.0, -95.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hex::polyfill(grid, box, 5));
  }
}
BENCHMARK(BM_PolyfillBox);

void BM_PropagateShell1(benchmark::State& state) {
  const auto orbits = orbit::make_constellation(orbit::starlink_shell1());
  double t = 0.0;
  for (auto _ : state) {
    t += 60.0;
    benchmark::DoNotOptimize(orbit::propagate_all(orbits, t));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(orbits.size()));
}
BENCHMARK(BM_PropagateShell1);

void BM_CountVisible(benchmark::State& state) {
  const auto orbits = orbit::make_constellation(orbit::starlink_shell1());
  const auto states = orbit::propagate_all(orbits, 123.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        orbit::count_visible({39.5, -98.35}, states, 25.0));
  }
}
BENCHMARK(BM_CountVisible);

void BM_GenerateProfileSmall(benchmark::State& state) {
  for (auto _ : state) {
    const demand::SyntheticGenerator gen({.seed = 3, .scale = 0.005});
    benchmark::DoNotOptimize(gen.generate_profile());
  }
}
BENCHMARK(BM_GenerateProfileSmall);

void BM_AggregateLocations(benchmark::State& state) {
  const demand::SyntheticGenerator gen({.seed = 3, .scale = 0.005});
  const auto dataset = gen.expand_locations(gen.generate_profile());
  const hex::HexGrid grid;
  for (auto _ : state) {
    benchmark::DoNotOptimize(demand::aggregate(dataset, grid, 5));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_AggregateLocations);

void BM_SizeWithCap(benchmark::State& state) {
  const core::SizingModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::size_with_cap(profile_2pct(), model, 5.0, 20.0));
  }
}
BENCHMARK(BM_SizeWithCap);

void BM_LongtailCurve(benchmark::State& state) {
  const core::SizingModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::longtail_curve(profile_2pct(), model, 10.0, 20.0));
  }
}
BENCHMARK(BM_LongtailCurve);

void BM_WeightedAliasDraw(benchmark::State& state) {
  std::vector<double> weights(3143);
  stats::Pcg32 seed_rng(5);
  for (auto& w : weights) w = seed_rng.next_double() + 0.01;
  const stats::WeightedAlias alias(weights);
  stats::Pcg32 rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alias(rng));
  }
}
BENCHMARK(BM_WeightedAliasDraw);

void BM_CompactConusRegion(benchmark::State& state) {
  const hex::HexGrid grid;
  const auto cells =
      hex::polyfill(grid, geo::BoundingBox{36.0, 42.0, -104.0, -94.0}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hex::compact(grid, cells, 3));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_CompactConusRegion);

void BM_IslHopsToNearest(benchmark::State& state) {
  const orbit::IslGrid grid(orbit::starlink_shell1());
  std::vector<std::uint32_t> sources;
  for (std::uint32_t i = 0; i < 64; ++i) sources.push_back(i * 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.hops_to_nearest(sources));
  }
}
BENCHMARK(BM_IslHopsToNearest);

void BM_TleRoundTrip(benchmark::State& state) {
  const orbit::CircularOrbit orbit{550.0, 0.925, 1.2, 0.4};
  for (auto _ : state) {
    const std::string text = orbit::to_tle(orbit, 44444);
    std::istringstream in(text);
    benchmark::DoNotOptimize(orbit::read_tle_catalog(in));
  }
}
BENCHMARK(BM_TleRoundTrip);

void BM_OptimalSlotBound(benchmark::State& state) {
  const auto orbits = orbit::make_constellation(orbit::starlink_shell1());
  const auto states = orbit::propagate_all(orbits, 100.0);
  const core::SatelliteCapacityModel capacity;
  const auto cells = sim::BeamScheduler::cells_from_profile(
      profile_2pct(), capacity, 20.0);
  sim::SchedulerConfig config;
  config.beamspread = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::optimal_slot_bound(cells, states, config));
  }
}
BENCHMARK(BM_OptimalSlotBound);

void BM_ScheduleShell1Indexed(benchmark::State& state) {
  const auto states = orbit::propagate_all(
      orbit::make_constellation(orbit::starlink_shell1()), 100.0);
  const auto cells = sim::BeamScheduler::cells_from_profile(
      profile_2pct(), core::SatelliteCapacityModel(), 20.0);
  const sim::BeamScheduler scheduler(cells, sim::SchedulerConfig{});
  sim::ScheduleWorkspace ws;
  sim::ScheduleResult result;
  for (auto _ : state) {
    scheduler.schedule(states, ws, result);
    benchmark::DoNotOptimize(result.locations_served);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_ScheduleShell1Indexed);

void BM_ScheduleShell1Naive(benchmark::State& state) {
  const auto states = orbit::propagate_all(
      orbit::make_constellation(orbit::starlink_shell1()), 100.0);
  const auto cells = sim::BeamScheduler::cells_from_profile(
      profile_2pct(), core::SatelliteCapacityModel(), 20.0);
  const sim::BeamScheduler scheduler(cells, sim::SchedulerConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule_reference(states));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_ScheduleShell1Naive);

std::string profile_bytes(const demand::DemandProfile& profile) {
  std::ostringstream cells, counties;
  profile.save_csv(cells, counties);
  return cells.str() + '\x1f' + counties.str();
}

// Aggregates `dataset` once on `executor` and returns {wall_ms, csv bytes}.
std::pair<double, std::string> timed_aggregate(
    const demand::DemandDataset& dataset, const hex::HexGrid& grid,
    runtime::Executor& executor) {
  const bench::WallTimer timer;
  const auto profile = demand::aggregate(dataset, grid, 5, executor);
  const double ms = timer.elapsed_ms();
  return {ms, profile_bytes(profile)};
}

// The `--threads N` scaling harness. Returns the process exit code.
int run_scaling_harness(std::size_t threads) {
  bench::banner("micro_perf: aggregation scaling, 1 vs " +
                std::to_string(threads) + " threads");

  // Build a >= 5M location dataset: the full-scale national expansion
  // (~4.7M underserved locations) plus a 10% re-expansion appended on top.
  const demand::SyntheticGenerator gen({.seed = 3, .scale = 1.0});
  const auto profile = gen.generate_profile();
  const auto full = gen.expand_locations(profile, 1.0);
  const auto extra = gen.expand_locations(profile, 0.1);
  std::vector<demand::Location> locations = full.locations();
  locations.insert(locations.end(), extra.locations().begin(),
                   extra.locations().end());
  const demand::DemandDataset dataset(std::move(locations), full.counties());
  std::cout << "  dataset:  " << dataset.size() << " locations\n";

  const hex::HexGrid grid;
  runtime::ThreadPool pool(threads);

  // Stage timers feed the "stages" member of each emitted JSON line; the
  // registry is reset between runs so every line is a per-run breakdown.
  obs::set_metrics_enabled(true);
  obs::registry().reset_values();
  const auto [serial_ms, serial_bytes] =
      timed_aggregate(dataset, grid, runtime::serial_executor());
  bench::emit_json_line("micro_perf.aggregate", serial_ms, 1);

  obs::registry().reset_values();
  const auto [pool_ms, pool_bytes] = timed_aggregate(dataset, grid, pool);
  bench::emit_json_line("micro_perf.aggregate", pool_ms, threads);

  std::cout << "  serial:   " << serial_ms << " ms\n"
            << "  threads=" << threads << ": " << pool_ms << " ms\n"
            << "  speedup:  " << serial_ms / pool_ms << "x\n";

  if (serial_bytes != pool_bytes) {
    std::cerr << "FAIL: N=1 and N=" << threads
              << " DemandProfile outputs differ\n";
    return 1;
  }
  std::cout << "  outputs:  byte-identical across thread counts\n";
  return 0;
}

// One `--sim-schedule` comparison scale: a synthetic cell field against a
// Walker shell of planes x sats_per_plane satellites.
struct SimScheduleCase {
  std::size_t n_cells;
  std::uint32_t planes;
  std::uint32_t sats_per_plane;
};

std::vector<sim::SchedCell> synthetic_sched_cells(std::size_t n) {
  // Cells across the shell's covered latitudes (+-56 deg for the 53 deg
  // shell), all longitudes, mixed demand and beam needs.
  stats::Pcg32 rng(4242);
  std::vector<sim::SchedCell> cells;
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim::SchedCell c;
    c.center = {-56.0 + rng.next_double() * 112.0,
                -180.0 + rng.next_double() * 360.0};
    c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
    c.locations = 1 + rng.next_below(2000);
    c.beams_needed = 1 + rng.next_below(3);
    cells.push_back(c);
  }
  return cells;
}

// Best-of-`reps` wall time of `fn` in milliseconds (warm caller assumed).
template <typename Fn>
double best_of_ms(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const bench::WallTimer timer;
    fn();
    const double ms = timer.elapsed_ms();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// Best-of plus median-of-`reps` wall time in milliseconds. The best-of is
// the gated low-noise estimator; the median shows how far a typical run
// sits from it (bench_check.py reports `median_speedup` informationally).
// Use an odd `reps` so the median is an actual observation.
struct RepTimes {
  double best_ms;
  double median_ms;
};
template <typename Fn>
RepTimes timed_reps_ms(int reps, const Fn& fn) {
  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const bench::WallTimer timer;
    fn();
    ms.push_back(timer.elapsed_ms());
  }
  std::sort(ms.begin(), ms.end());
  return {ms.front(), ms[ms.size() / 2]};
}

// The `--sim-schedule` kernel-comparison harness. Returns the process exit
// code: nonzero when the kernels disagree on any case.
int run_sim_schedule_harness() {
  bench::banner("micro_perf: sim.schedule indexed vs naive kernel");
  int rc = 0;
  const SimScheduleCase cases[] = {{1000, 40, 25}, {4000, 80, 50}};
  for (const SimScheduleCase& c : cases) {
    const auto cells = synthetic_sched_cells(c.n_cells);
    const sim::BeamScheduler scheduler(cells, sim::SchedulerConfig{});
    const orbit::WalkerShell shell{53.0, 550.0, c.planes, c.sats_per_plane,
                                   1};
    const auto states =
        orbit::propagate_all(orbit::make_constellation(shell), 100.0);
    std::cout << "  case: " << c.n_cells << " cells x " << states.size()
              << " sats\n";

    sim::ScheduleWorkspace ws;
    sim::ScheduleResult indexed;
    scheduler.schedule(states, ws, indexed);  // also warms the workspace
    const sim::ScheduleResult naive = scheduler.schedule_reference(states);
    if (!(indexed == naive)) {
      std::cerr << "FAIL: indexed and naive schedules differ at "
                << c.n_cells << "x" << states.size() << "\n";
      rc = 1;
      continue;
    }
    std::cout << "  outputs:  byte-identical (served "
              << indexed.locations_served << "/" << indexed.locations_total
              << " locations)\n";

    const double naive_ms = best_of_ms(
        3, [&] { benchmark::DoNotOptimize(scheduler.schedule_reference(states)); });
    const double indexed_ms =
        best_of_ms(5, [&] { scheduler.schedule(states, ws, indexed); });
    std::cout << "  naive:    " << naive_ms << " ms\n"
              << "  indexed:  " << indexed_ms << " ms\n"
              << "  speedup:  " << naive_ms / indexed_ms << "x\n";
    std::cout << "{\"bench\":\"sim.schedule\",\"cells\":" << c.n_cells
              << ",\"sats\":" << states.size() << ",\"naive_ms\":" << naive_ms
              << ",\"indexed_ms\":" << indexed_ms
              << ",\"speedup\":" << naive_ms / indexed_ms << "}" << std::endl;
  }
  return rc;
}

// One `--sim-event` comparison scale: synthetic demand cells against a
// small Walker shell over a multi-day horizon at a sub-minute step — the
// regime where fixed-epoch stepping recomputes thousands of identical
// schedules between contact changes.
struct SimEventCase {
  std::size_t n_cells;
  double duration_s;
  double step_s;
};

demand::DemandProfile event_bench_profile(std::size_t n) {
  demand::CountyTable counties;
  counties.add({"00001", {40.0, -100.0}, 50000.0, 0});
  stats::Pcg32 rng(9090);
  std::vector<demand::CellDemand> cells;
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    demand::CellDemand c;
    c.center = {-56.0 + rng.next_double() * 112.0,
                -180.0 + rng.next_double() * 360.0};
    c.underserved = 1 + static_cast<std::uint32_t>(rng.next_below(2000));
    cells.push_back(c);
  }
  return demand::DemandProfile(std::move(cells), std::move(counties));
}

// The `--sim-event` engine-comparison harness. Returns the process exit
// code: nonzero when the engines' epoch traces differ on any case.
int run_sim_event_harness() {
  bench::banner("micro_perf: sim.event event-driven vs fixed-epoch engine");
  int rc = 0;
  // 1 s steps: handover events last seconds, so that is the step the epoch
  // kernel needs for exact churn accounting — the event engine gets it for
  // free because its cost is independent of the step.
  const SimEventCase cases[] = {{40, 86400.0, 1.0}, {48, 2.0 * 86400.0, 1.0}};
  for (const SimEventCase& c : cases) {
    sim::SimulationConfig config;
    config.shell = {53.0, 550.0, 6, 6, 1};
    config.duration_s = c.duration_s;
    config.step_s = c.step_s;
    const auto profile = event_bench_profile(c.n_cells);
    const sim::SimClock clock(config.duration_s, config.step_s);
    const std::size_t n_sats = static_cast<std::size_t>(config.shell.planes) *
                               config.shell.sats_per_plane;
    std::cout << "  case: " << c.n_cells << " cells x " << n_sats
              << " sats, " << c.duration_s / 86400.0 << " d @ " << c.step_s
              << " s (" << clock.epochs() << " epochs)\n";

    const sim::Simulation epoch_sim(config, profile);
    event::EventSimulation event_sim(config, profile);
    runtime::Executor& executor = runtime::serial_executor();

    const auto expected = epoch_sim.run(executor);
    auto actual = event_sim.run(executor);  // also warms the workspace
    if (expected != actual) {
      std::cerr << "FAIL: event and epoch traces differ at " << c.n_cells
                << " cells x " << n_sats << " sats\n";
      rc = 1;
      continue;
    }
    std::cout << "  outputs:  byte-identical (" << expected.size()
              << " epochs)\n";

    const double epoch_ms =
        best_of_ms(2, [&] { benchmark::DoNotOptimize(epoch_sim.run(executor)); });
    const double event_ms =
        best_of_ms(3, [&] { benchmark::DoNotOptimize(event_sim.run(executor)); });
    std::cout << "  epoch:    " << epoch_ms << " ms\n"
              << "  event:    " << event_ms << " ms\n"
              << "  speedup:  " << epoch_ms / event_ms << "x\n";
    std::cout << "{\"bench\":\"sim.event\",\"cells\":" << c.n_cells
              << ",\"sats\":" << n_sats << ",\"epochs\":" << clock.epochs()
              << ",\"epoch_ms\":" << epoch_ms << ",\"event_ms\":" << event_ms
              << ",\"speedup\":" << epoch_ms / event_ms << "}" << std::endl;
  }
  return rc;
}

// Bit-level equality for the serve-delta harness's cross-checks (the
// determinism contract is byte-identical, not approximately-equal).
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same_sizing(const core::SizingResult& a, const core::SizingResult& b) {
  return same_bits(a.satellites, b.satellites) &&
         same_bits(a.binding_lat_deg, b.binding_lat_deg) &&
         a.beams_on_binding == b.beams_on_binding &&
         a.binding_cell_index == b.binding_cell_index;
}

// The `--serve-delta` harness: incremental per-region recompute (serve/)
// vs full library recompute after each single-cell delta. Both paths apply
// the same op sequence to their own copy of the baseline and answer the
// same resize + served-fraction queries each round; answers are checked
// bit-identical before anything is timed. Affordability is cross-checked
// once at the end but kept out of the timed loop: an add-delta revises a
// county count, so both paths rebuild the affordability analyzer in full —
// there is no incremental win to measure there. Returns the process exit
// code: nonzero on any answer mismatch.
int run_serve_delta_harness(std::size_t smoke_workers) {
  bench::banner("micro_perf: serve.delta incremental vs full recompute");
  int rc = 0;
  constexpr int kRounds = 200;
  constexpr double kBeamspread = 10.0;
  constexpr double kOversubCap = 20.0;

  const demand::DemandProfile baseline =
      demand::SyntheticGenerator({.seed = 42, .scale = 0.5})
          .generate_profile();
  const std::size_t n_cells = baseline.cell_count();
  std::cout << "  baseline: " << n_cells << " cells, "
            << baseline.counties().size() << " counties, " << kRounds
            << " rounds of 1 add-delta + resize + served\n";

  // One add-op per round, spread over the baseline's cells.
  std::vector<demand::DeltaOp> ops;
  ops.reserve(kRounds);
  for (int r = 0; r < kRounds; ++r) {
    demand::DeltaOp op;
    op.kind = demand::DeltaKind::kAddLocations;
    op.position =
        baseline.cells()[(static_cast<std::size_t>(r) * 9973) % n_cells]
            .center;
    op.count = 25;
    ops.push_back(op);
  }

  const core::SizingModel model{};
  runtime::Executor& executor = runtime::serial_executor();

  // Incremental path: engine owns its copy; cold partial build happens on
  // the first query and is reported separately (it is the startup cost a
  // long-lived server pays once).
  serve::IncrementalEngine engine(baseline, serve::EngineConfig{});
  const bench::WallTimer cold_timer;
  (void)engine.query_resize(kBeamspread, kOversubCap);
  (void)engine.query_served_fraction(kBeamspread, kOversubCap);
  const double cold_ms = cold_timer.elapsed_ms();

  std::vector<serve::ResizeAnswer> inc_resize(ops.size());
  std::vector<serve::ServedFractionAnswer> inc_served(ops.size());
  const bench::WallTimer inc_timer;
  for (std::size_t r = 0; r < ops.size(); ++r) {
    (void)engine.apply(ops[r]);
    inc_resize[r] = engine.query_resize(kBeamspread, kOversubCap);
    inc_served[r] = engine.query_served_fraction(kBeamspread, kOversubCap);
  }
  const double incremental_ms = inc_timer.elapsed_ms();

  // Full path: same ops against a second copy, answered by the plain
  // library calls on every round.
  demand::DemandProfile full_profile = baseline;
  const hex::HexGrid grid;
  demand::DeltaApplier applier(full_profile, grid,
                               hex::kServiceCellResolution);
  std::vector<core::SizingResult> full_full(ops.size());
  std::vector<core::SizingResult> full_capped(ops.size());
  std::vector<double> full_cell_frac(ops.size());
  std::vector<double> full_loc_frac(ops.size());
  const bench::WallTimer full_timer;
  for (std::size_t r = 0; r < ops.size(); ++r) {
    (void)applier.apply(ops[r]);
    full_full[r] = core::size_full_service(full_profile, model, kBeamspread);
    full_capped[r] = core::size_with_cap(full_profile, model, kBeamspread,
                                         kOversubCap, executor);
    full_cell_frac[r] = core::served_cell_fraction(
        full_profile, model.capacity, kBeamspread, kOversubCap);
    full_loc_frac[r] = core::served_location_fraction(
        full_profile, model.capacity, kBeamspread, kOversubCap);
  }
  const double full_ms = full_timer.elapsed_ms();

  for (std::size_t r = 0; r < ops.size(); ++r) {
    if (!same_sizing(inc_resize[r].full, full_full[r]) ||
        !same_sizing(inc_resize[r].capped, full_capped[r]) ||
        !same_bits(inc_served[r].cell_fraction, full_cell_frac[r]) ||
        !same_bits(inc_served[r].location_fraction, full_loc_frac[r])) {
      std::cerr << "FAIL: incremental and full answers differ at round " << r
                << "\n";
      rc = 1;
    }
  }

  // Affordability correctness on the fully mutated profile (untimed).
  const afford::ServicePlan plan = afford::starlink_residential();
  const afford::PlanAffordability inc_afford =
      engine.query_affordability(plan, afford::kAffordabilityThreshold);
  const afford::PlanAffordability full_afford =
      afford::AffordabilityAnalyzer(full_profile)
          .evaluate(plan, afford::kAffordabilityThreshold);
  if (!(inc_afford == full_afford)) {
    std::cerr << "FAIL: incremental and full affordability answers differ\n";
    rc = 1;
  }
  if (rc == 0) {
    std::cout << "  outputs:  byte-identical over " << kRounds
              << " rounds (+ affordability)\n";
  }

  std::cout << "  cold partial build: " << cold_ms << " ms\n"
            << "  full:        " << full_ms << " ms\n"
            << "  incremental: " << incremental_ms << " ms\n"
            << "  speedup:     " << full_ms / incremental_ms << "x\n";
  std::cout << "{\"bench\":\"serve.delta\",\"cells\":" << n_cells
            << ",\"rounds\":" << kRounds << ",\"deltas_per_round\":1"
            << ",\"full_ms\":" << full_ms
            << ",\"incremental_ms\":" << incremental_ms
            << ",\"speedup\":" << full_ms / incremental_ms << "}"
            << std::endl;

  // Concurrency smoke: `--workers W` threads hammer one ServiceState (the
  // same lock the socket server's worker pool contends on) and every reply
  // must come back well-formed and identical across threads.
  if (smoke_workers > 1) {
    serve::ServiceState state(
        demand::SyntheticGenerator({.seed = 42, .scale = 0.05})
            .generate_profile(),
        serve::ServiceConfig{});
    const std::string expected =
        state
            .handle({serve::protocol::MsgType::kQueryServedFraction,
                     encode(serve::protocol::QueryServedFractionRequest{
                         kBeamspread, kOversubCap})})
            .payload;
    std::vector<std::thread> threads;
    std::vector<int> errors(smoke_workers, 0);
    for (std::size_t w = 0; w < smoke_workers; ++w) {
      threads.emplace_back([&, w] {
        for (int q = 0; q < 50; ++q) {
          const serve::protocol::Frame reply =
              state.handle({serve::protocol::MsgType::kQueryServedFraction,
                            encode(serve::protocol::QueryServedFractionRequest{
                                kBeamspread, kOversubCap})});
          if (reply.type !=
                  serve::protocol::MsgType::kServedFractionResult ||
              reply.payload != expected) {
            errors[w] = 1;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t w = 0; w < smoke_workers; ++w) {
      if (errors[w] != 0) {
        std::cerr << "FAIL: concurrent session smoke saw a bad reply\n";
        rc = 1;
        break;
      }
    }
    if (rc == 0) {
      std::cout << "  smoke:    " << smoke_workers << " worker(s) x 50"
                << " queries, all replies identical\n";
    }
  }
  return rc;
}

// The `--market` harness: the three-operator default market under the
// FairShare split, evaluated serially and on a three-thread pool (one
// worker per operator — the parallelism MarketSimulation actually
// exploits). The two reports are checked byte-identical (operator==, which
// is bit-level on every float) before anything is timed. Returns the
// process exit code: nonzero when the reports differ.
int run_market_harness() {
  bench::banner("micro_perf: market.operators serial vs pooled evaluation");
  const demand::DemandProfile profile =
      demand::SyntheticGenerator({.seed = 11, .scale = 1.0})
          .generate_profile();

  market::MarketConfig config;
  config.operators = market::default_market();
  config.split.policy = market::SplitPolicy::kFairShare;
  const market::MarketSimulation simulation(config);
  const std::size_t n_operators = config.operators.size();
  std::cout << "  case: " << n_operators << " operators x "
            << profile.cell_count() << " cells, policy "
            << market::to_string(config.split.policy) << "\n";

  runtime::Executor& serial = runtime::serial_executor();
  runtime::ThreadPool pool(n_operators);

  const market::MarketReport serial_report = simulation.run(profile, serial);
  const market::MarketReport pool_report = simulation.run(profile, pool);
  if (!(serial_report == pool_report)) {
    std::cerr << "FAIL: serial and pooled market reports differ\n";
    return 1;
  }
  std::cout << "  outputs:  byte-identical across executors\n";

  const double serial_ms = best_of_ms(
      3, [&] { benchmark::DoNotOptimize(simulation.run(profile, serial)); });
  const double pool_ms = best_of_ms(
      3, [&] { benchmark::DoNotOptimize(simulation.run(profile, pool)); });
  std::cout << "  serial:   " << serial_ms << " ms\n"
            << "  pooled:   " << pool_ms << " ms\n"
            << "  speedup:  " << serial_ms / pool_ms << "x\n";
  std::cout << "{\"bench\":\"market.operators\",\"operators\":" << n_operators
            << ",\"cells\":" << profile.cell_count()
            << ",\"serial_ms\":" << serial_ms << ",\"pool_ms\":" << pool_ms
            << ",\"speedup\":" << serial_ms / pool_ms << "}" << std::endl;
  return 0;
}

// Emits one gated JSON line for a kernel-vs-scalar comparison.
void print_simd_case(const char* name, std::size_t n, RepTimes scalar,
                     RepTimes simd) {
  std::cout << "  scalar:   " << scalar.best_ms << " ms\n"
            << "  simd:     " << simd.best_ms << " ms\n"
            << "  speedup:  " << scalar.best_ms / simd.best_ms << "x (median "
            << scalar.median_ms / simd.median_ms << "x)\n";
  std::cout << "{\"bench\":\"graph\",\"case\":\"" << name << "\",\"n\":" << n
            << ",\"scalar_ms\":" << scalar.best_ms
            << ",\"simd_ms\":" << simd.best_ms
            << ",\"speedup\":" << scalar.best_ms / simd.best_ms
            << ",\"median_speedup\":" << scalar.median_ms / simd.median_ms
            << "}" << std::endl;
}

// The SIMD half of the `--graph` harness: the visibility mask, the
// candidate compaction and the epoch rotation kernels against their
// retained scalar twins over an 8192-satellite SoA, bit-compared before
// anything is timed. Single-threaded, so the ratios are honest on any
// host; the >= 2x gate on the mask kernel assumes the vector backend is
// live (kernel_lanes() > 1), which the CI runners' x86-64 toolchain
// provides.
int run_graph_simd_cases() {
  // 2048 satellites keep the SoA L1-resident (3 x 16 KiB inputs), so the
  // ratios measure the kernels, not the cache hierarchy — 2048 is also the
  // right ballpark for a per-epoch shell slice.
  constexpr std::size_t kSats = 2048;
  constexpr int kIters = 1600;  // timed fn = kIters kernel calls
  // 25 deg minimum elevation at the 550 km shell — the pipeline's real
  // visibility threshold (same coverage-cone derivation BeamScheduler
  // uses: psi = acos(ratio * cos(e)) - e with ratio = R / (R + alt)).
  const double kElevRad = geo::deg2rad(25.0);
  const double kRatio =
      geo::kEarthRadiusKm /
      (geo::kEarthRadiusKm + orbit::starlink_shell1().altitude_km);
  const double cos_psi =
      std::cos(std::acos(kRatio * std::cos(kElevRad)) - kElevRad);
  std::cout << "  backend:  " << orbit::kernel_backend() << " ("
            << orbit::kernel_lanes() << " lane(s))\n";

  // SoA of unit satellite radials spread over the sphere, plus one cell.
  stats::Pcg32 rng(0x5EEDu);
  std::vector<double> ux(kSats), uy(kSats), uz(kSats);
  for (std::size_t i = 0; i < kSats; ++i) {
    const double z = 2.0 * rng.next_double() - 1.0;
    const double phi = 2.0 * geo::kPi * rng.next_double();
    const double rxy = std::sqrt(std::max(0.0, 1.0 - z * z));
    ux[i] = rxy * std::cos(phi);
    uy[i] = rxy * std::sin(phi);
    uz[i] = z;
  }
  const geo::Vec3 cell =
      geo::spherical_to_cartesian({39.5, -98.35}, 1.0);  // unit radial

  int rc = 0;
  {  // visible_mask vs visible_mask_scalar
    std::cout << "  case: visible_mask over " << kSats << " sats\n";
    std::vector<std::uint8_t> mask(kSats), mask_ref(kSats);
    orbit::visible_mask(cell.x, cell.y, cell.z, ux.data(), uy.data(),
                        uz.data(), kSats, cos_psi, mask.data());
    orbit::visible_mask_scalar(cell.x, cell.y, cell.z, ux.data(), uy.data(),
                               uz.data(), kSats, cos_psi, mask_ref.data());
    if (std::memcmp(mask.data(), mask_ref.data(), kSats) != 0) {
      std::cerr << "FAIL: visible_mask disagrees with scalar twin\n";
      rc = 1;
    } else {
      std::cout << "  outputs:  bit-identical to scalar\n";
      const RepTimes scalar = timed_reps_ms(5, [&] {
        for (int it = 0; it < kIters; ++it) {
          orbit::visible_mask_scalar(cell.x, cell.y, cell.z, ux.data(),
                                     uy.data(), uz.data(), kSats, cos_psi,
                                     mask_ref.data());
          benchmark::DoNotOptimize(mask_ref.data());
        }
      });
      const RepTimes simd = timed_reps_ms(5, [&] {
        for (int it = 0; it < kIters; ++it) {
          orbit::visible_mask(cell.x, cell.y, cell.z, ux.data(), uy.data(),
                              uz.data(), kSats, cos_psi, mask.data());
          benchmark::DoNotOptimize(mask.data());
        }
      });
      print_simd_case("simd.visible_mask", kSats, scalar, simd);
    }
  }
  {  // filter_visible vs filter_visible_scalar (all-candidates compaction)
    std::cout << "  case: filter_visible over " << kSats << " candidates\n";
    std::vector<std::uint32_t> candidates(kSats);
    for (std::size_t i = 0; i < kSats; ++i) {
      candidates[i] = static_cast<std::uint32_t>(i);
    }
    std::vector<std::uint32_t> out(kSats), out_ref(kSats);
    const std::size_t kept = orbit::filter_visible(
        cell.x, cell.y, cell.z, ux.data(), uy.data(), uz.data(),
        candidates.data(), kSats, cos_psi, out.data());
    const std::size_t kept_ref = orbit::filter_visible_scalar(
        cell.x, cell.y, cell.z, ux.data(), uy.data(), uz.data(),
        candidates.data(), kSats, cos_psi, out_ref.data());
    if (kept != kept_ref ||
        std::memcmp(out.data(), out_ref.data(),
                    kept * sizeof(std::uint32_t)) != 0) {
      std::cerr << "FAIL: filter_visible disagrees with scalar twin\n";
      rc = 1;
    } else {
      std::cout << "  outputs:  bit-identical to scalar (kept " << kept << "/"
                << kSats << ")\n";
      const RepTimes scalar = timed_reps_ms(5, [&] {
        for (int it = 0; it < kIters; ++it) {
          benchmark::DoNotOptimize(orbit::filter_visible_scalar(
              cell.x, cell.y, cell.z, ux.data(), uy.data(), uz.data(),
              candidates.data(), kSats, cos_psi, out_ref.data()));
        }
      });
      const RepTimes simd = timed_reps_ms(5, [&] {
        for (int it = 0; it < kIters; ++it) {
          benchmark::DoNotOptimize(orbit::filter_visible(
              cell.x, cell.y, cell.z, ux.data(), uy.data(), uz.data(),
              candidates.data(), kSats, cos_psi, out.data()));
        }
      });
      print_simd_case("simd.filter_visible", kSats, scalar, simd);
    }
  }
  {  // rotate_about_z vs rotate_about_z_scalar (out-of-place)
    std::cout << "  case: rotate_about_z over " << kSats << " sats\n";
    const double c = std::cos(0.123456789);
    const double s = std::sin(0.123456789);
    std::vector<double> rx(kSats), ry(kSats), rx_ref(kSats), ry_ref(kSats);
    orbit::rotate_about_z(ux.data(), uy.data(), c, s, kSats, rx.data(),
                          ry.data());
    orbit::rotate_about_z_scalar(ux.data(), uy.data(), c, s, kSats,
                                 rx_ref.data(), ry_ref.data());
    if (std::memcmp(rx.data(), rx_ref.data(), kSats * sizeof(double)) != 0 ||
        std::memcmp(ry.data(), ry_ref.data(), kSats * sizeof(double)) != 0) {
      std::cerr << "FAIL: rotate_about_z disagrees with scalar twin\n";
      rc = 1;
    } else {
      std::cout << "  outputs:  bit-identical to scalar\n";
      const RepTimes scalar = timed_reps_ms(5, [&] {
        for (int it = 0; it < kIters; ++it) {
          orbit::rotate_about_z_scalar(ux.data(), uy.data(), c, s, kSats,
                                       rx_ref.data(), ry_ref.data());
          benchmark::DoNotOptimize(rx_ref.data());
        }
      });
      const RepTimes simd = timed_reps_ms(5, [&] {
        for (int it = 0; it < kIters; ++it) {
          orbit::rotate_about_z(ux.data(), uy.data(), c, s, kSats, rx.data(),
                                ry.data());
          benchmark::DoNotOptimize(rx.data());
        }
      });
      print_simd_case("simd.rotate", kSats, scalar, simd);
    }
  }
  return rc;
}

// The `--graph` harness. Two halves:
//
// graph.pipeline — K independent scenario chains (synthetic generation ->
// full analysis -> snapshot store) run strictly sequentially with
// synchronous stores, vs TaskGraph-scheduled on a four-thread pool with
// stores offloaded to the async I/O thread. Inner stage parallelism is
// pinned to one thread (set_global_threads(1)) so the ratio isolates
// exactly what the task-graph runtime adds: cross-chain overlap plus
// compute/I/O overlap. Per-chain serialized results are checked
// byte-identical between the two modes before anything is timed. Like the
// market bench, the >= 1.3x gate needs real hardware threads — on a
// single-core host the ratio degenerates to ~1x (CI-only gate).
//
// graph.simd.* — see run_graph_simd_cases above.
int run_graph_harness() {
  bench::banner("micro_perf: task-graph pipeline + SIMD kernels vs scalar");
  constexpr std::size_t kChains = 4;
  runtime::set_global_threads(1);  // chains overlap; inner stages serial

  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() / "leodivide_graph_bench";
  std::filesystem::remove_all(cache_dir);
  const snapshot::StageCache cache(cache_dir.string());

  demand::GeneratorConfig configs[kChains];
  snapshot::Fingerprint fps[kChains];
  for (std::size_t k = 0; k < kChains; ++k) {
    configs[k] = {.seed = 100 + static_cast<std::uint64_t>(k), .scale = 0.4};
    fps[k] = snapshot::stage_fingerprint("bench.analysis");
    snapshot::mix(fps[k], configs[k]);
  }

  // One sequential chain: generate, analyze, serialize; store via `store`.
  const auto run_chain = [&](std::size_t k, std::string& blob_out,
                             const auto& store) {
    const demand::DemandProfile profile =
        demand::SyntheticGenerator(configs[k]).generate_profile();
    const core::AnalysisResults results = core::run_full_analysis(profile);
    blob_out = snapshot::serialize(results);
    store(k, blob_out);
  };

  std::cout << "  case: " << kChains
            << " generate->analyze->store chains, pool(4) + async I/O\n";

  // Byte-identity first: sequential/sync-store vs graph/async-store.
  std::vector<std::string> blobs_seq(kChains), blobs_graph(kChains);
  const auto run_sequential = [&] {
    for (std::size_t k = 0; k < kChains; ++k) {
      run_chain(k, blobs_seq[k], [&](std::size_t i, const std::string& blob) {
        cache.store("bench.analysis", fps[i], blob);
      });
    }
  };
  const auto run_graph = [&](runtime::Executor& ex) {
    snapshot::AsyncIo io;
    runtime::TaskGraph graph;
    for (std::size_t k = 0; k < kChains; ++k) {
      graph.add_task("bench.chain", [&, k] {
        run_chain(k, blobs_graph[k],
                  [&](std::size_t i, const std::string& blob) {
                    io.enqueue_store(cache, "bench.analysis", fps[i],
                                     std::string(blob));
                  });
      });
    }
    graph.run(ex);
    io.drain();  // the stores are part of the measured work
  };

  runtime::ThreadPool pool(4);
  run_sequential();
  run_graph(pool);
  for (std::size_t k = 0; k < kChains; ++k) {
    if (blobs_seq[k] != blobs_graph[k]) {
      std::cerr << "FAIL: chain " << k
                << " serialized results differ between sequential and "
                   "graph runs\n";
      std::filesystem::remove_all(cache_dir);
      return 1;
    }
  }
  std::cout << "  outputs:  byte-identical across modes ("
            << blobs_seq[0].size() << " B/chain)\n";

  const RepTimes seq = timed_reps_ms(5, run_sequential);
  const RepTimes graphed = timed_reps_ms(5, [&] { run_graph(pool); });
  std::filesystem::remove_all(cache_dir);
  std::cout << "  seq:      " << seq.best_ms << " ms\n"
            << "  graph:    " << graphed.best_ms << " ms\n"
            << "  speedup:  " << seq.best_ms / graphed.best_ms << "x (median "
            << seq.median_ms / graphed.median_ms << "x)\n";
  std::cout << "{\"bench\":\"graph\",\"case\":\"pipeline\",\"chains\":"
            << kChains << ",\"seq_ms\":" << seq.best_ms
            << ",\"graph_ms\":" << graphed.best_ms
            << ",\"speedup\":" << seq.best_ms / graphed.best_ms
            << ",\"median_speedup\":" << seq.median_ms / graphed.median_ms
            << "}" << std::endl;

  return run_graph_simd_cases();
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --threads N / --threads=N and the observability flags before
  // google-benchmark sees the command line (it rejects flags it does not
  // own).
  namespace obs = leodivide::obs;
  obs::Options obs_options = obs::options_from_env();
  std::size_t threads = 0;
  bool sim_schedule = false;
  bool sim_event = false;
  bool serve_delta = false;
  bool market = false;
  bool graph = false;
  std::size_t workers = leodivide::runtime::worker_count_from_env(4);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg == "--sim-schedule") {
      sim_schedule = true;
    } else if (arg == "--sim-event") {
      sim_event = true;
    } else if (arg == "--serve-delta") {
      serve_delta = true;
    } else if (arg == "--market") {
      market = true;
    } else if (arg == "--graph") {
      graph = true;
    } else if (leodivide::runtime::parse_workers_arg(argc, argv, i, workers)) {
      // Worker-pool flag (serve-delta concurrency smoke); consumed.
    } else if (obs::parse_cli_arg(obs_options, argc, argv, i)) {
      // Observability flag; consumed.
    } else {
      args.push_back(argv[i]);
    }
  }
  obs::apply(obs_options);

  int rc = 0;
  if (graph) {
    rc = run_graph_harness();
  } else if (market) {
    rc = run_market_harness();
  } else if (serve_delta) {
    rc = run_serve_delta_harness(workers);
  } else if (sim_schedule) {
    rc = run_sim_schedule_harness();
  } else if (sim_event) {
    rc = run_sim_event_harness();
  } else if (threads > 0) {
    rc = run_scaling_harness(threads);
  } else {
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
      rc = 1;
    } else {
      benchmark::RunSpecifiedBenchmarks();
      benchmark::Shutdown();
    }
  }
  obs::finalize(obs_options);
  return rc;
}
