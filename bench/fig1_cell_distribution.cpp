// Figure 1: distribution of un(der)served locations per Starlink service
// cell — histogram (left panel) + CDF (right panel) + the three annotated
// statistics (p90 = 552, p99 = 1437, max = 5998).

#include <iostream>

#include "bench_common.hpp"
#include "leodivide/stats/cdf.hpp"
#include "leodivide/stats/histogram.hpp"
#include "leodivide/stats/lorenz.hpp"
#include "leodivide/stats/percentile.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Figure 1: un(der)served locations per service cell");

  const auto& profile = bench::national_profile();
  const auto counts = profile.counts_as_doubles();

  std::cout << "cells with >= 1 un(der)served location: "
            << io::fmt_count(static_cast<long long>(profile.cell_count()))
            << "\ntotal un(der)served locations:          "
            << io::fmt_count(static_cast<long long>(profile.total_locations()))
            << "\n\n";

  // Left panel: histogram over [0, 6000] in 50 bins.
  stats::Histogram hist(0.0, 6000.0, 50);
  hist.add_all(counts);
  std::cout << "Histogram (# of cells per bin):\n" << hist.ascii(48) << '\n';

  // Right panel: CDF at round thresholds.
  const stats::EmpiricalCdf cdf(counts);
  io::TextTable cdf_table;
  cdf_table.set_header({"locations/cell <=", "cumulative probability"});
  for (double x : {62.0, 100.0, 250.0, 552.0, 1000.0, 1437.0, 2000.0, 3000.0,
                   4000.0, 5000.0, 5998.0}) {
    cdf_table.add_row({io::fmt(x, 0), io::fmt(cdf(x), 4)});
  }
  std::cout << "CDF:\n" << cdf_table.render() << '\n';

  // The paper's annotated statistics.
  io::TextTable stats_table;
  stats_table.set_header({"Statistic", "Paper", "Measured", "Rel. err"});
  const double p90 = stats::percentile(counts, 90.0);
  const double p99 = stats::percentile(counts, 99.0);
  const double mx = cdf.max();
  stats_table.add_row({"90th percentile (locs/cell)", "552",
                       io::fmt(p90, 0), bench::rel_err(p90, 552.0)});
  stats_table.add_row({"99th percentile (locs/cell)", "1437",
                       io::fmt(p99, 0), bench::rel_err(p99, 1437.0)});
  stats_table.add_row({"max density (locs/cell)", "5998", io::fmt(mx, 0),
                       bench::rel_err(mx, 5998.0)});
  stats_table.add_row(
      {"total un(der)served locations", "4,672,500",
       io::fmt_count(static_cast<long long>(profile.total_locations())),
       bench::rel_err(static_cast<double>(profile.total_locations()),
                      4672500.0)});
  std::cout << "Annotated statistics (paper vs measured):\n"
            << stats_table.render() << '\n';

  // Companion: how concentrated is the demand? This is the quantitative
  // form of the paper's "long tail of cell densities" observation that
  // drives P2 and Figure 3.
  std::cout << "Concentration of demand across cells:\n"
            << "  Gini coefficient:          " << io::fmt(stats::gini(counts), 3)
            << '\n'
            << "  share held by top 1%:      "
            << io::fmt_pct(stats::top_share(counts, 0.01), 1) << '\n'
            << "  share held by top 10%:     "
            << io::fmt_pct(stats::top_share(counts, 0.10), 1) << '\n'
            << "  share held by top 50%:     "
            << io::fmt_pct(stats::top_share(counts, 0.50), 1) << '\n';
  leodivide::bench::emit_json_line("fig1_cell_distribution", timer.elapsed_ms());
  return 0;
}
