// Extension: the Figure-3 long tail in dollars. Amortised constellation
// cost per served location along the diminishing-returns curve, against
// the revenue ceiling the Figure-4 affordability analysis allows.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "leodivide/core/economics.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Extension: serving economics along the long tail");

  const auto& profile = bench::national_profile();
  const core::SizingModel model;
  const core::CostModel cost;
  std::cout << "cost model: $" << io::fmt(cost.cost_per_satellite_usd / 1e6, 1)
            << "M per satellite, " << io::fmt(cost.satellite_lifetime_years, 0)
            << "-year lifetime (amortised)\n\n";

  const auto curve = core::longtail_curve(profile, model, 10.0, 20.0);
  const auto econ =
      core::longtail_economics(curve, profile.total_locations(), cost);

  io::TextTable table;
  table.set_header({"locations unserved", "satellites", "fleet $/yr",
                    "avg $/location/yr", "marginal $/location/yr"});
  // Print a readable subset: every ~10th point plus the two ends.
  const std::size_t step = std::max<std::size_t>(1, econ.size() / 10);
  for (std::size_t i = 0; i < econ.size(); ++i) {
    if (i != 0 && i != econ.size() - 1 && i % step != 0) continue;
    const auto& e = econ[i];
    table.add_row(
        {io::fmt_count(static_cast<long long>(e.locations_unserved)),
         io::fmt_count(std::llround(e.satellites)),
         "$" + io::fmt(e.annual_cost_usd / 1e9, 2) + "B",
         "$" + io::fmt(e.cost_per_location_year_usd, 0),
         e.marginal_cost_per_location_year_usd > 0.0
             ? "$" + io::fmt(e.marginal_cost_per_location_year_usd, 0)
             : "-"});
  }
  std::cout << table.render() << '\n';

  // Revenue side: what the affordability analysis says is collectable.
  const afford::AffordabilityAnalyzer analyzer(profile);
  const double starlink_rev = core::annual_revenue_ceiling_usd(
      analyzer, afford::starlink_residential());
  const double lifeline_rev = core::annual_revenue_ceiling_usd(
      analyzer, afford::starlink_residential_lifeline());
  const auto& full = econ.back();
  std::cout << "revenue ceiling from un(der)served locations @ $120/mo "
               "(only the 25.5% who can afford it): $"
            << io::fmt(starlink_rev / 1e9, 2) << "B/yr\n"
            << "revenue ceiling w/ Lifeline ($110.75/mo): $"
            << io::fmt(lifeline_rev / 1e9, 2) << "B/yr\n"
            << "amortised cost of the full capped deployment (s=10): $"
            << io::fmt(full.annual_cost_usd / 1e9, 2) << "B/yr\n\n";

  std::cout
      << "Reading: the *average* cost per served location stays modest "
         "(the constellation serves the whole country at once — P1's "
         "cheap marginal coverage), but the *marginal* cost of the last "
         "tail locations runs to hundreds or thousands of dollars per "
         "location-year, far above any plausible ARPU — the economic form "
         "of F3's 'significant diminishing returns that disincentivize "
         "serving the long tail'. The affordability ceiling (F4) caps "
         "collectable revenue from exactly the population the paper "
         "studies, so prices cannot simply rise to cover the tail.\n";
  leodivide::bench::emit_json_line("extension_economics", timer.elapsed_ms());
  return 0;
}
