// Ablation: shell-inclination design. The paper's sizing model puts the
// binding demand cell at ~36.5 deg N, far from the 53-degree band where a
// Walker shell's density peaks. How much smaller could the fleet be if the
// shells were chosen for the demand geography? This is the design question
// the paper's P2 analysis directly motivates.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/orbit/shells.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Ablation: shell inclination vs required fleet");

  const core::SizingModel base_model;
  const auto& profile = bench::national_profile();

  // The binding cell of the 20:1 scenario (the paper's Table 2, col 3).
  const auto binding = core::size_with_cap(profile, base_model, 1.0, 20.0);
  const double phi = binding.binding_lat_deg;
  std::cout << "binding cell latitude: " << io::fmt(phi, 2)
            << " deg N (needs " << binding.beams_on_binding << " beams)\n\n";

  // (a) Single-shell inclination sweep: satellites needed so the shell's
  // density at phi supports one satellite per 1 + 20 s cells (s = 1).
  const double area_per_sat =
      base_model.capacity.plan().cells_served_per_satellite(1.0, 4) *
      base_model.cell_area_km2;
  io::TextTable single;
  single.set_header({"inclination (deg)", "satellites (s=1, 20:1)",
                     "vs 53 deg", "max covered latitude"});
  const double at53 = orbit::constellation_size_for_density(
      1.0 / area_per_sat, phi, 53.0);
  for (double incl : {40.0, 43.0, 45.0, 48.0, 53.0, 60.0, 70.0, 85.0}) {
    if (incl <= phi) continue;  // shell must cover the binding latitude
    const double n = orbit::constellation_size_for_density(
        1.0 / area_per_sat, phi, incl);
    single.add_row({io::fmt(incl, 1), io::fmt_count(std::llround(n)),
                    bench::rel_err(n, at53), io::fmt(incl, 1) + " deg"});
  }
  std::cout << single.render() << '\n';

  // (b) Multi-shell mixtures: today's Gen1 five-shell design vs
  // demand-optimised alternatives, scaled to the binding density.
  io::TextTable multi;
  multi.set_header({"design", "shells", "scaled fleet (s=1, 20:1)",
                    "vs Gen1 mix"});
  struct Design {
    const char* name;
    orbit::MultiShellConstellation mix;
  };
  orbit::MultiShellConstellation low_pair{{{43.0, 550.0, 72, 22, 1},
                                           {53.0, 550.0, 72, 22, 1}}};
  orbit::MultiShellConstellation demand_tuned{{{40.0, 550.0, 72, 22, 1},
                                               {53.0, 550.0, 36, 22, 1},
                                               {70.0, 570.0, 18, 20, 1}}};
  const Design designs[] = {
      {"Starlink Gen1 (5 shells)", orbit::starlink_gen1()},
      {"43 + 53 deg pair", low_pair},
      {"demand-tuned 40/53/70", demand_tuned},
  };
  const double gen1 =
      designs[0].mix.size_for_density(1.0 / area_per_sat, phi);
  for (const auto& d : designs) {
    const double n = d.mix.size_for_density(1.0 / area_per_sat, phi);
    multi.add_row({d.name, std::to_string(d.mix.shells().size()),
                   io::fmt_count(std::llround(n)), bench::rel_err(n, gen1)});
  }
  std::cout << multi.render() << '\n';

  std::cout
      << "Reading: a shell inclined just above the binding latitude "
         "concentrates its dwell time where the demand is, cutting the "
         "required fleet vs a 53-degree shell — but it also shrinks the "
         "covered latitude band (no service above the inclination), which "
         "is why real designs mix shells. The paper's 'anyone, anywhere' "
         "requirement (P1: full coverage) is exactly what forbids the "
         "cheap, demand-only design.\n";
  leodivide::bench::emit_json_line("ablation_shell_design", timer.elapsed_ms());
  return 0;
}
