// Table 1: the Starlink single-satellite capacity model, plus the F1
// oversubscription finding. Every row is printed paper-vs-measured.

#include <iostream>

#include "bench_common.hpp"
#include "leodivide/core/capacity_model.hpp"
#include "leodivide/core/oversubscription.hpp"
#include "leodivide/core/report.hpp"
#include "leodivide/spectrum/linkbudget.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Table 1: Starlink single-satellite capacity model");

  const core::SatelliteCapacityModel model;
  const auto& profile = bench::national_profile();
  const core::Table1Summary t = model.table1(profile);

  // Spectrum rows exactly as in the paper's band table.
  io::TextTable bands;
  bands.set_header({"Band (GHz)", "# Beams", "Usage"});
  for (const auto& b : model.plan().spectrum().bands()) {
    bands.add_row({b.name + " (" + io::fmt(b.width_mhz(), 0) + " MHz)",
                   std::to_string(b.beams), spectrum::to_string(b.usage)});
  }
  std::cout << bands.render() << '\n';

  io::TextTable table;
  table.set_header({"Parameter", "Paper", "Measured", "Rel. err"});
  table.add_row({"UT downlink spectrum (MHz)", "3850",
                 io::fmt(t.ut_downlink_mhz, 0),
                 bench::rel_err(t.ut_downlink_mhz, 3850.0)});
  table.add_row({"Total spectrum incl. GW (MHz)", "8850",
                 io::fmt(t.total_mhz, 0), bench::rel_err(t.total_mhz, 8850.0)});
  table.add_row({"UT beams", "24", std::to_string(t.ut_beams),
                 bench::rel_err(t.ut_beams, 24.0)});
  table.add_row({"Total beams", "28", std::to_string(t.total_beams),
                 bench::rel_err(t.total_beams, 28.0)});
  table.add_row({"Spectral efficiency (bps/Hz)", "4.5",
                 io::fmt(t.spectral_efficiency, 1),
                 bench::rel_err(t.spectral_efficiency, 4.5)});
  table.add_row({"Max per-cell capacity (Gbps)", "17.3",
                 io::fmt(t.max_cell_capacity_gbps, 3),
                 bench::rel_err(t.max_cell_capacity_gbps, 17.325)});
  table.add_row({"Peak cell users", "5998",
                 io::fmt_count(t.peak_cell_users),
                 bench::rel_err(t.peak_cell_users, 5998.0)});
  table.add_row({"Peak cell DL demand (Gbps)", "599.8",
                 io::fmt(t.peak_cell_demand_gbps, 1),
                 bench::rel_err(t.peak_cell_demand_gbps, 599.8)});
  table.add_row({"Max DL oversubscription", "~35:1",
                 io::fmt(t.max_oversubscription, 2) + ":1",
                 bench::rel_err(t.max_oversubscription, 34.62)});
  std::cout << table.render() << '\n';

  // Cross-check of the 4.5 bps/Hz assumption from the link-budget module.
  const spectrum::LinkBudget budget;
  std::cout << "Link-budget cross-check: C/N = "
            << io::fmt(spectrum::carrier_to_noise_db(budget), 1)
            << " dB -> DVB-S2X MODCOD efficiency "
            << io::fmt(spectrum::achievable_efficiency(budget), 2)
            << " bps/Hz (paper adopts 4.5; Shannon bound "
            << io::fmt(spectrum::shannon_bound_efficiency(budget), 2)
            << ")\n\n";

  // F1.
  bench::banner("Finding F1: oversubscription");
  const auto f1 = core::analyze_oversubscription(profile, model);
  io::TextTable ftab;
  ftab.set_header({"Quantity", "Paper", "Measured", "Rel. err"});
  ftab.add_row({"Peak oversubscription", "35:1",
                io::fmt(f1.peak_oversubscription, 2) + ":1",
                bench::rel_err(f1.peak_oversubscription, 34.62)});
  ftab.add_row({"Locations served above 20:1", "22,428",
                io::fmt_count(static_cast<long long>(f1.locations_above_cap)),
                bench::rel_err(static_cast<double>(f1.locations_above_cap),
                               22428.0)});
  ftab.add_row(
      {"Share of total", "0.48%", io::fmt_pct(
           static_cast<double>(f1.locations_above_cap) /
           static_cast<double>(f1.total_locations)),
       ""});
  ftab.add_row({"Unservable at 20:1", "5,128 (17.3 Gbps) / 5,103 (17.325)",
                io::fmt_count(static_cast<long long>(
                    f1.locations_unservable_at_cap)),
                bench::rel_err(
                    static_cast<double>(f1.locations_unservable_at_cap),
                    5103.0)});
  ftab.add_row({"Servable fraction at 20:1", "99.89%",
                io::fmt_pct(f1.servable_fraction_at_cap),
                bench::rel_err(f1.servable_fraction_at_cap, 0.9989)});
  std::cout << ftab.render();
  leodivide::bench::emit_json_line("table1_satellite_capacity", timer.elapsed_ms());
  return 0;
}
