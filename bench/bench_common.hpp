#pragma once
// Shared plumbing for the per-table/per-figure bench binaries: the national
// calibrated profile (generated once) and paper-vs-measured row helpers.

#include <iostream>
#include <string>

#include "leodivide/core/scenario.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/io/table.hpp"

namespace leodivide::bench {

/// The full-scale calibrated national demand profile (deterministic).
inline const demand::DemandProfile& national_profile() {
  static const demand::DemandProfile profile =
      demand::SyntheticGenerator(demand::GeneratorConfig{}).generate_profile();
  return profile;
}

/// Relative error rendered as a percentage string ("+0.05%").
inline std::string rel_err(double measured, double paper) {
  if (paper == 0.0) return "n/a";
  const double e = (measured - paper) / paper * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", e);
  return buf;
}

/// Standard bench banner.
inline void banner(const std::string& title) {
  std::cout << "==================================================\n"
            << title << '\n'
            << "==================================================\n";
}

}  // namespace leodivide::bench
