#pragma once
// Shared plumbing for the per-table/per-figure bench binaries: the national
// calibrated profile (generated once), paper-vs-measured row helpers, and
// the observability session every bench main opens (env vars
// LEODIVIDE_TRACE/LEODIVIDE_METRICS plus --trace/--metrics flags).

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "leodivide/core/scenario.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/io/table.hpp"
#include "leodivide/obs/obs.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/snapshot/snapshot.hpp"

namespace leodivide::bench {

/// RAII observability session for a bench binary: reads the env vars,
/// consumes any --trace/--metrics/--snapshot-dir argv flags, enables the
/// requested facilities, and writes the trace/metrics files when the bench
/// exits.
///
///   int main(int argc, char** argv) {
///     leodivide::bench::ObsGuard obs_guard(argc, argv);
///     ...
///   }
class ObsGuard {
 public:
  ObsGuard(int argc, char** argv) : options_(obs::options_from_env()) {
    for (int i = 1; i < argc; ++i) {
      if (obs::parse_cli_arg(options_, argc, argv, i)) continue;
      (void)snapshot::parse_cli_arg(argc, argv, i);
    }
    obs::apply(options_);
  }
  ~ObsGuard() { obs::finalize(options_); }
  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;

 private:
  obs::Options options_;
};

/// Monotonic wall-clock timer for whole-bench timing.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Emits the machine-readable result line every bench binary ends with:
///   {"bench":"<name>","threads":N,"wall_ms":X}
/// plus a `"stages":{...}` per-stage wall-time breakdown when metrics are
/// enabled. `threads` defaults to the process-global executor's concurrency,
/// so the line reflects LEODIVIDE_THREADS / --threads without extra plumbing.
/// Built via the obs JSON emitter, so arbitrarily long names and embedded
/// quotes are escaped instead of truncated.
inline void emit_json_line(const std::string& bench, double wall_ms,
                           std::size_t threads =
                               runtime::global_executor().concurrency()) {
  std::cout << obs::bench_line_json(bench, threads, wall_ms) << std::endl;
}

/// The full-scale calibrated national demand profile (deterministic).
/// Restored from the snapshot cache when one is configured
/// (--snapshot-dir / LEODIVIDE_SNAPSHOT_DIR), generated otherwise.
inline const demand::DemandProfile& national_profile() {
  static const demand::DemandProfile profile = [] {
    const demand::GeneratorConfig gen_config{};
    auto generate = [&gen_config] {
      return demand::SyntheticGenerator(gen_config).generate_profile();
    };
    snapshot::StageCache* cache = snapshot::global_cache();
    if (cache == nullptr) return generate();
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("demand.profile");
    snapshot::mix(fp, gen_config);
    return cache->get_or_compute(
        "demand.profile", fp, generate,
        [](const demand::DemandProfile& p) { return snapshot::serialize(p); },
        [](std::string_view blob) {
          return snapshot::deserialize_profile(blob);
        });
  }();
  return profile;
}

/// Relative error rendered as a percentage string ("+0.05%").
inline std::string rel_err(double measured, double paper) {
  // leolint:allow(float-eq): exact-zero guard before relative error
  if (paper == 0.0) return "n/a";
  const double e = (measured - paper) / paper * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", e);
  return buf;
}

/// Standard bench banner.
inline void banner(const std::string& title) {
  std::cout << "==================================================\n"
            << title << '\n'
            << "==================================================\n";
}

}  // namespace leodivide::bench
