#pragma once
// Shared plumbing for the per-table/per-figure bench binaries: the national
// calibrated profile (generated once) and paper-vs-measured row helpers.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "leodivide/core/scenario.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/io/table.hpp"
#include "leodivide/runtime/executor.hpp"

namespace leodivide::bench {

/// Monotonic wall-clock timer for whole-bench timing.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Emits the machine-readable result line every bench binary ends with:
///   {"bench": "<name>", "threads": N, "wall_ms": X}
/// `threads` defaults to the process-global executor's concurrency, so the
/// line reflects LEODIVIDE_THREADS / --threads without extra plumbing.
inline void emit_json_line(const std::string& bench, double wall_ms,
                           std::size_t threads =
                               runtime::global_executor().concurrency()) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\": \"%s\", \"threads\": %zu, \"wall_ms\": %.3f}",
                bench.c_str(), threads, wall_ms);
  std::cout << buf << std::endl;
}

/// The full-scale calibrated national demand profile (deterministic).
inline const demand::DemandProfile& national_profile() {
  static const demand::DemandProfile profile =
      demand::SyntheticGenerator(demand::GeneratorConfig{}).generate_profile();
  return profile;
}

/// Relative error rendered as a percentage string ("+0.05%").
inline std::string rel_err(double measured, double paper) {
  if (paper == 0.0) return "n/a";
  const double e = (measured - paper) / paper * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", e);
  return buf;
}

/// Standard bench banner.
inline void banner(const std::string& title) {
  std::cout << "==================================================\n"
            << title << '\n'
            << "==================================================\n";
}

}  // namespace leodivide::bench
