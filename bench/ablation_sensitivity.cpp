// Ablation: sensitivity of the paper's headline conclusion (F2: > 40,000
// satellites to serve all US cells at beamspread 2 within 20:1) to the
// model's assumed constants — spectral efficiency, beams per cell,
// per-location demand, service-cell resolution, and the oversubscription
// benchmark itself.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/spectrum/beamplan.hpp"

namespace {

using namespace leodivide;

double headline(const core::SizingModel& model,
                const demand::DemandProfile& profile, double oversub) {
  return core::size_with_cap(profile, model, 2.0, oversub).satellites;
}

}  // namespace

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  bench::banner(
      "Ablation: sensitivity of F2 (satellites at beamspread 2, 20:1)");

  const auto& profile = bench::national_profile();
  const core::SizingModel base;
  const double baseline = headline(base, profile, 20.0);
  std::cout << "baseline: " << io::fmt_count(std::llround(baseline))
            << " satellites (paper: 41,261)\n\n";

  // (a) Spectral efficiency: the paper adopts 4.5 bps/Hz from measurement
  // literature; DVB-S2X spans ~2.5-5.4.
  io::TextTable eff;
  eff.set_header({"bps/Hz", "cell capacity (Gbps)", "satellites", "vs base",
                  "> 40k?"});
  for (double e : {3.0, 3.5, 4.0, 4.5, 5.0, 5.5}) {
    core::SizingModel m;
    m.capacity = core::SatelliteCapacityModel(
        spectrum::BeamPlan(spectrum::starlink_schedule_s(), 4, e));
    const double n = headline(m, profile, 20.0);
    eff.add_row({io::fmt(e, 1),
                 io::fmt(m.capacity.cell_capacity_gbps(), 2),
                 io::fmt_count(std::llround(n)), bench::rel_err(n, baseline),
                 n > 40000.0 ? "yes" : "no"});
  }
  std::cout << "(a) spectral efficiency:\n" << eff.render() << '\n';

  // (b) Beams required for a full-capacity cell (FCC filings say 4).
  io::TextTable beams;
  beams.set_header({"beams/full cell", "satellites", "vs base", "> 40k?"});
  for (std::uint32_t b : {2U, 3U, 4U, 6U, 8U}) {
    core::SizingModel m;
    m.capacity = core::SatelliteCapacityModel(
        spectrum::BeamPlan(spectrum::starlink_schedule_s(), b));
    const double n = headline(m, profile, 20.0);
    beams.add_row({std::to_string(b), io::fmt_count(std::llround(n)),
                   bench::rel_err(n, baseline), n > 40000.0 ? "yes" : "no"});
  }
  std::cout << "(b) beams per full-capacity cell:\n" << beams.render()
            << '\n';

  // (c) The oversubscription benchmark (the FCC's 20:1 for fixed wireless).
  io::TextTable cap;
  cap.set_header({"oversub cap", "unservable residue", "satellites",
                  "vs base"});
  for (double o : {10.0, 15.0, 20.0, 25.0, 30.0, 35.0}) {
    const auto r = core::size_with_cap(profile, base, 2.0, o);
    std::uint64_t residue = 0;
    const auto cap_locs = base.capacity.max_locations_at(o);
    for (const auto& c : profile.cells()) {
      if (c.underserved > cap_locs) residue += c.underserved - cap_locs;
    }
    cap.add_row({io::fmt(o, 0) + ":1",
                 io::fmt_count(static_cast<long long>(residue)),
                 io::fmt_count(std::llround(r.satellites)),
                 bench::rel_err(r.satellites, baseline)});
  }
  std::cout << "(c) oversubscription benchmark:\n" << cap.render() << '\n';

  // (d) Service-cell resolution (area quarters per step; demand per cell
  // re-derives from the same national total, approximated by scaling the
  // peak density with the cell area ratio).
  io::TextTable res;
  res.set_header({"resolution", "cell area (km^2)",
                  "satellites (area-scaled)", "vs base"});
  for (int r : {4, 5, 6}) {
    core::SizingModel m;
    m.cell_area_km2 = hex::cell_area_km2(r);
    // Same binding latitude; K scales with 1/A_cell. Demand per cell scales
    // ~ linearly with area, and capacity per cell is fixed, so the beams on
    // the binding cell stay saturated at 4 across this range.
    const double n = headline(m, profile, 20.0);
    res.add_row({std::to_string(r), io::fmt(m.cell_area_km2, 1),
                 io::fmt_count(std::llround(n)),
                 bench::rel_err(n, baseline)});
  }
  std::cout << "(d) service-cell resolution (coarse sensitivity):\n"
            << res.render() << '\n';

  std::cout
      << "Reading: F2 is robust. Even at 5.5 bps/Hz or a relaxed 30:1 "
         "benchmark the beamspread-2 deployment stays in the tens of "
         "thousands of satellites; the conclusion flips only if cells "
         "needed far fewer beams than the FCC filings indicate, or if the "
         "oversubscription cap is abandoned entirely (the 35:1 row — the "
         "paper's 'full service' scenario).\n";
  leodivide::bench::emit_json_line("ablation_sensitivity", timer.elapsed_ms());
  return 0;
}
