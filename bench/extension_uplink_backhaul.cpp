// Extension: beyond the paper's downlink-only analysis — (a) is the uplink
// an even tighter constraint at the peak cell, and (b) can bent-pipe
// gateway backhaul sustain the user beams at full tilt?

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "leodivide/core/backhaul.hpp"
#include "leodivide/core/uplink.hpp"
#include "leodivide/geo/us_outline.hpp"
#include "leodivide/sim/gateway.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Extension (a): uplink vs downlink at the peak cell");

  const core::SatelliteCapacityModel down;
  const core::UplinkModel up;
  const auto& profile = bench::national_profile();

  std::cout << "UT uplink spectrum: " << io::fmt(up.ut_uplink_mhz, 0)
            << " MHz (14.0-14.5 GHz) at " << io::fmt(up.bps_per_hz, 1)
            << " bps/Hz -> " << io::fmt(up.cell_capacity_gbps(), 2)
            << " Gbps per cell (vs " << io::fmt(down.cell_capacity_gbps(), 2)
            << " Gbps downlink)\n\n";

  io::TextTable table;
  table.set_header({"cell size (locations)", "DL oversub", "UL oversub",
                    "UL/DL ratio"});
  for (std::uint32_t locs : {100U, 552U, 1437U, 3465U, 5998U}) {
    const auto r = core::analyze_uplink(down, up, locs);
    table.add_row({io::fmt_count(locs),
                   io::fmt(r.downlink_oversubscription, 1) + ":1",
                   io::fmt(r.uplink_oversubscription, 1) + ":1",
                   io::fmt(r.uplink_to_downlink_ratio, 2)});
  }
  std::cout << table.render() << '\n';

  const auto peak = core::analyze_uplink(down, up, profile.peak_cell_count());
  std::cout << "At a 20:1 uplink oversubscription a cell serves at most "
            << io::fmt_count(peak.max_locations_at_20to1_uplink)
            << " locations (vs " << io::fmt_count(down.max_locations_at(20.0))
            << " for downlink): with only 500 MHz of UT uplink, the 20 Mbps "
               "federal uplink floor binds "
            << io::fmt(peak.uplink_to_downlink_ratio, 1)
            << "x harder than the 100 Mbps downlink floor. The paper's "
               "downlink-only analysis is therefore *conservative*: the "
               "true constellation requirement is at least as large.\n\n";

  bench::banner("Extension (b): gateway backhaul adequacy");
  const core::BackhaulModel bh;
  const auto r = core::analyze_backhaul(down, bh);
  io::TextTable btable;
  btable.set_header({"Quantity", "Value"});
  btable.add_row({"user beams at full tilt",
                  io::fmt(r.user_capacity_gbps, 1) + " Gbps"});
  btable.add_row({"feeder capacity (" + std::to_string(bh.feeder_links) +
                      " links x " + io::fmt(bh.feeder_mhz, 0) + " MHz)",
                  io::fmt(r.feeder_capacity_gbps, 1) + " Gbps"});
  btable.add_row({"adequacy ratio (feeder/user)",
                  io::fmt(r.adequacy_ratio, 2)});
  btable.add_row({"bent-pipe fraction of user capacity",
                  io::fmt_pct(r.bent_pipe_fraction, 1)});
  std::cout << btable.render() << '\n';

  // Gateway sites to sustain a Table-2-scale fleet over CONUS.
  for (double fleet : {8000.0, 41261.0}) {
    const double sites = core::gateway_sites_needed(
        bh, fleet, 53.0, 39.5, geo::conus_area_km2());
    std::cout << "fleet of " << io::fmt_count(std::llround(fleet))
              << " satellites -> ~" << io::fmt_count(std::llround(sites))
              << " CONUS gateway sites to hold " << bh.feeder_links
              << " feeder links per overhead satellite\n";
  }
  // Geometric complement: gateway sites so every satellite position over
  // CONUS sees at least one gateway (greedy set cover on a candidate grid).
  {
    std::vector<geo::GeoPoint> candidates;
    const auto& outline = geo::conus_outline();
    for (double lat = 26.0; lat <= 48.0; lat += 3.0) {
      for (double lon = -123.0; lon <= -69.0; lon += 3.0) {
        if (outline.contains({lat, lon})) candidates.push_back({lat, lon});
      }
    }
    const auto placement = sim::place_gateways(
        candidates, geo::conus_bbox(), sim::GatewayPlacementConfig{});
    std::cout << "\ngeometric minimum (greedy set cover): "
              << placement.sites.size()
              << " gateway sites give every satellite position over CONUS a "
                 "feeder within the footprint ("
              << placement.uncovered_samples
              << " offshore sample points unreachable from land "
                 "candidates).\n";
  }

  std::cout << "\nReading: with two feeder links a satellite's bent-pipe "
               "backhaul roughly sustains its user beams (ratio ~"
            << io::fmt(r.adequacy_ratio, 2)
            << "), but the gateway ground segment must scale with the "
               "constellation — another cost the headline satellite count "
               "hides.\n";
  leodivide::bench::emit_json_line("extension_uplink_backhaul", timer.elapsed_ms());
  return 0;
}
