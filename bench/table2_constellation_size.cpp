// Table 2: predicted constellation size for beamspread factors
// {1, 2, 5, 10, 15} under the full-service and max-20:1 deployments, plus
// Finding F2. Both the dataset-derived sizes (binding cell found in the
// calibrated profile, Walker latitude-density inversion) and the
// calibrated-K closed form are reported against the paper's rows.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/calibration.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Table 2: predicted constellation size");

  const core::SizingModel model;
  const auto& profile = bench::national_profile();

  const struct {
    double s;
    double paper_full;
    double paper_cap;
  } rows[] = {{1, 79287, 80567},
              {2, 40611, 41261},
              {5, 16486, 16750},
              {10, 8284, 8417},
              {15, 5532, 5621}};

  io::TextTable table;
  table.set_header({"Beamspread", "Paper (full)", "Derived (full)", "err",
                    "Paper (20:1)", "Derived (20:1)", "err"});
  for (const auto& row : rows) {
    const double full =
        core::size_full_service(profile, model, row.s).satellites;
    const double cap =
        core::size_with_cap(profile, model, row.s, 20.0).satellites;
    table.add_row({io::fmt(row.s, 0),
                   io::fmt_count(static_cast<long long>(row.paper_full)),
                   io::fmt_count(std::llround(full)),
                   bench::rel_err(full, row.paper_full),
                   io::fmt_count(static_cast<long long>(row.paper_cap)),
                   io::fmt_count(std::llround(cap)),
                   bench::rel_err(cap, row.paper_cap)});
  }
  std::cout << table.render() << '\n';

  std::cout << "Model: N = K(phi_binding) / (1 + (24 - 4) * beamspread), "
               "K(phi) = 2 pi^2 R^2 sqrt(sin^2 53 - sin^2 phi) / A_cell\n"
            << "Binding latitudes derived from the dataset: full-service "
            << io::fmt(core::size_full_service(profile, model, 1.0)
                           .binding_lat_deg, 3)
            << " deg, 20:1 "
            << io::fmt(core::size_with_cap(profile, model, 1.0, 20.0)
                           .binding_lat_deg, 3)
            << " deg\n\n";

  // Calibrated closed form using the reverse-engineered constants.
  io::TextTable ktable;
  ktable.set_header(
      {"Beamspread", "K-form (full)", "err", "K-form (20:1)", "err"});
  for (const auto& row : rows) {
    const double full = core::satellites_from_k(
        model, demand::paper::kKFullService, row.s, 4);
    const double cap =
        core::satellites_from_k(model, demand::paper::kK20To1, row.s, 4);
    ktable.add_row({io::fmt(row.s, 0), io::fmt_count(std::llround(full)),
                    bench::rel_err(full, row.paper_full),
                    io::fmt_count(std::llround(cap)),
                    bench::rel_err(cap, row.paper_cap)});
  }
  std::cout << "Calibrated-K closed form (K_full = 1,665,076; K_20:1 = "
               "1,691,819):\n"
            << ktable.render() << '\n';

  // Finding F2.
  bench::banner("Finding F2");
  const double at_s2 = core::size_with_cap(profile, model, 2.0, 20.0).satellites;
  std::cout << "To serve all US cells within the 20:1 cap at beamspread < 2,"
               " the constellation needs "
            << io::fmt_count(std::llround(at_s2)) << " satellites ("
            << io::fmt_count(std::llround(at_s2 - 8000.0))
            << " more than the ~8,000 deployed today; paper: >40,000 total, "
               ">32,000 additional).\n";
  leodivide::bench::emit_json_line("table2_constellation_size", timer.elapsed_ms());
  return 0;
}
