// Figure 3: constellation size required to serve varying numbers of
// un(der)served locations, for fixed oversubscription and beamspread
// factors — the diminishing-returns / long-tail analysis behind Finding F3.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "leodivide/core/longtail.hpp"

int main(int argc, char** argv) {
  const leodivide::bench::ObsGuard obs_guard(argc, argv);
  const leodivide::bench::WallTimer timer;
  using namespace leodivide;
  bench::banner("Figure 3: constellation size vs locations left unserved");

  const core::SizingModel model;
  const auto& profile = bench::national_profile();

  const std::pair<double, double> curves[] = {
      {1, 20}, {2, 20}, {5, 20}, {5, 15}, {10, 20}, {15, 20}};

  for (const auto& [s, o] : curves) {
    const auto curve = core::longtail_curve(profile, model, s, o);
    std::cout << "-- beamspread " << s << ", oversub " << o << ":1  ("
              << curve.size() << " steps; residue "
              << io::fmt_count(static_cast<long long>(
                     curve.front().locations_unserved))
              << " locations can never be served at this cap)\n";
    // Print the curve restricted to the paper's x-range (<= 68,000 left
    // unserved), sampled at each step boundary.
    io::TextTable table;
    table.set_header({"locations left unserved", "satellites",
                      "beams on binding cell", "binding lat (deg)"});
    std::size_t printed = 0;
    for (const auto& p : curve) {
      if (p.locations_unserved > 68000) break;
      table.add_row({io::fmt_count(static_cast<long long>(
                         p.locations_unserved)),
                     io::fmt_count(std::llround(p.satellites)),
                     std::to_string(p.beams_on_binding),
                     io::fmt(p.binding_lat_deg, 2)});
      if (++printed >= 12) {  // keep the console output compact
        table.add_row({"...", "...", "...", "..."});
        break;
      }
    }
    std::cout << table.render() << '\n';
  }

  // The paper's annotated callouts (for beamspread 10, oversub 20:1).
  bench::banner("Paper callouts (s = 10, 20:1) and Finding F3");
  const auto curve = core::longtail_curve(profile, model, 10.0, 20.0);
  const std::uint64_t total = profile.total_locations();

  const double n_at_62k = core::satellites_for_unserved_budget(curve, 62458);
  const double n_at_25k = core::satellites_for_unserved_budget(curve, 24916);
  const double n_at_17k = core::satellites_for_unserved_budget(curve, 17488);
  const double n_full = core::satellites_for_unserved_budget(curve, 5103);

  io::TextTable callouts;
  callouts.set_header({"Quantity", "Paper", "Measured"});
  callouts.add_row(
      {"(1) extra sats: first 4.61M served -> next 37,542 locations",
       "+2,567", "+" + io::fmt_count(std::llround(n_at_25k - n_at_62k))});
  callouts.add_row({"(2) extra sats for the next 7,428 locations", "+1,910",
                    "+" + io::fmt_count(std::llround(n_at_17k - n_at_25k))});
  callouts.add_row({"(3) locations unservable at 20:1", "5,103",
                    io::fmt_count(static_cast<long long>(
                        curve.front().locations_unserved))});
  callouts.add_row({"full capped deployment (s=10)", "8,417",
                    io::fmt_count(std::llround(n_full))});
  std::cout << callouts.render() << '\n';

  std::cout << "F3: connecting the final ~3,000 servable locations (from "
            << io::fmt_count(8103) << " to "
            << io::fmt_count(5103) << " unserved) requires "
            << io::fmt_count(std::llround(
                   n_full -
                   core::satellites_for_unserved_budget(curve, 8103)))
            << " additional satellites at s=10 (paper: hundreds to "
               "thousands, depending on beamspread).\n"
            << "Total locations in the profile: "
            << io::fmt_count(static_cast<long long>(total)) << '\n';
  leodivide::bench::emit_json_line("fig3_diminishing_returns", timer.elapsed_ms());
  return 0;
}
